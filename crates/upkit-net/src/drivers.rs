//! End-to-end propagation drivers for the push and pull flows.
//!
//! Each driver executes the full Fig. 2 message sequence against a real
//! [`UpdateAgent`], moving the actual bytes chunk by chunk and charging
//! every exchange to a [`TransferAccounting`] so the simulator can convert
//! the session into time and energy. The drivers stop the moment the agent
//! rejects something — that early termination is precisely the byte/energy
//! saving UpKit's agent-side verification buys.
//!
//! Since the session refactor these are thin step-until-done wrappers over
//! the resumable [`crate::session`] machinery; the original monolithic
//! loops survive as `#[doc(hidden)]` reference implementations so the
//! equivalence proptests can assert charge-for-charge identical
//! [`SessionReport`]s.

use upkit_core::agent::{AgentPhase, UpdateAgent, UpdatePlan};
use upkit_core::generation::UpdateServer;
use upkit_flash::MemoryLayout;
use upkit_manifest::DEVICE_TOKEN_LEN;

use crate::lossy::LossyLink;
use crate::profiles::{LinkProfile, TransferAccounting};
use crate::proxy::{BorderRouter, Smartphone};
use crate::session::{
    PullEndpoints, PullSession, PushEndpoints, PushSession, RetryPolicy, Transport,
};

pub use crate::session::{SessionOutcome, SessionReport};

/// Drives a complete **push** update (Fig. 2's smartphone flow) over a
/// BLE-like link.
///
/// Sequence: token request/response → phone fetches from server → phone
/// pushes manifest → agent verifies (early-rejection point) → phone pushes
/// payload → agent verifies firmware.
///
/// Equivalent to stepping a [`PushSession`] over a reliable link to
/// completion.
pub fn run_push_session(
    server: &UpdateServer,
    phone: &mut Smartphone,
    agent: &mut UpdateAgent,
    layout: &mut MemoryLayout,
    plan: UpdatePlan,
    nonce: u32,
    link: &LinkProfile,
) -> SessionReport {
    let mut session = PushSession::new(LossyLink::reliable(*link), RetryPolicy::for_link(link), 0);
    let mut endpoints = PushEndpoints::new(server, phone, agent, layout, plan, nonce);
    session.run_to_completion(&mut endpoints)
}

/// Drives a complete **pull** update over a CoAP-blockwise-like link with a
/// border router in the path.
///
/// The device initiates everything: it sends its token with the request and
/// fetches the image block by block, each block a confirmed round trip.
///
/// Equivalent to stepping a [`PullSession`] over a reliable link to
/// completion.
pub fn run_pull_session(
    server: &UpdateServer,
    router: &BorderRouter,
    agent: &mut UpdateAgent,
    layout: &mut MemoryLayout,
    plan: UpdatePlan,
    nonce: u32,
    link: &LinkProfile,
) -> SessionReport {
    let mut session = PullSession::new(LossyLink::reliable(*link), RetryPolicy::for_link(link), 0);
    let mut endpoints = PullEndpoints::new(server, router, agent, layout, plan, nonce);
    session.run_to_completion(&mut endpoints)
}

/// Pre-refactor monolithic push loop, kept verbatim (modulo the
/// `ProxyEmpty` typed error replacing an `expect`) as the reference the
/// stepped [`PushSession`] is proven equivalent to.
#[doc(hidden)]
pub fn reference_push_session(
    server: &UpdateServer,
    phone: &mut Smartphone,
    agent: &mut UpdateAgent,
    layout: &mut MemoryLayout,
    plan: UpdatePlan,
    nonce: u32,
    link: &LinkProfile,
) -> SessionReport {
    let mut acc = TransferAccounting::default();

    // Steps 4–5: phone requests the device token over BLE.
    acc.charge_round_trip(link);
    let token = match agent.request_device_token(layout, plan, nonce) {
        Ok(token) => token,
        Err(e) => {
            return SessionReport {
                outcome: SessionOutcome::RejectedAtManifest(e),
                accounting: acc,
            }
        }
    };
    acc.charge_from_device(link, DEVICE_TOKEN_LEN as u64);

    // Steps 6–7: phone ↔ server over the Internet (not charged to the
    // device's radio).
    if !phone.fetch_update(server, &token) {
        return SessionReport {
            outcome: SessionOutcome::NoUpdateAvailable,
            accounting: acc,
        };
    }

    // Steps 8–9: manifest over BLE, verified on arrival.
    let Some(manifest_bytes) = phone.outgoing_manifest() else {
        return SessionReport {
            outcome: SessionOutcome::ProxyEmpty,
            accounting: acc,
        };
    };
    let mut rejected_at_manifest = true;
    for chunk in manifest_bytes.chunks(link.mtu) {
        acc.charge_to_device(link, chunk.len() as u64);
        match agent.push_data(layout, chunk) {
            Ok(AgentPhase::ManifestAccepted) => {
                rejected_at_manifest = false;
            }
            Ok(_) => {}
            Err(e) => {
                return SessionReport {
                    outcome: SessionOutcome::RejectedAtManifest(e),
                    accounting: acc,
                }
            }
        }
    }
    if rejected_at_manifest {
        // Manifest stream was too short to complete verification.
        return SessionReport {
            outcome: SessionOutcome::Incomplete,
            accounting: acc,
        };
    }

    // Steps 10–11: agent notifies the phone to proceed.
    acc.charge_round_trip(link);

    // Steps 12–14: payload over BLE, digest-verified at the end.
    let Some(payload) = phone.outgoing_payload() else {
        return SessionReport {
            outcome: SessionOutcome::ProxyEmpty,
            accounting: acc,
        };
    };
    let mut last_phase = AgentPhase::NeedMore;
    for chunk in payload.chunks(link.mtu) {
        acc.charge_to_device(link, chunk.len() as u64);
        match agent.push_data(layout, chunk) {
            Ok(phase) => last_phase = phase,
            Err(e) => {
                return SessionReport {
                    outcome: SessionOutcome::RejectedAtFirmware(e),
                    accounting: acc,
                }
            }
        }
    }
    let outcome = if last_phase == AgentPhase::Complete {
        SessionOutcome::Complete
    } else {
        SessionOutcome::Incomplete
    };
    SessionReport {
        outcome,
        accounting: acc,
    }
}

/// Pre-refactor monolithic pull loop, kept verbatim as the reference the
/// stepped [`PullSession`] is proven equivalent to.
#[doc(hidden)]
pub fn reference_pull_session(
    server: &UpdateServer,
    router: &BorderRouter,
    agent: &mut UpdateAgent,
    layout: &mut MemoryLayout,
    plan: UpdatePlan,
    nonce: u32,
    link: &LinkProfile,
) -> SessionReport {
    let mut acc = TransferAccounting::default();

    let token = match agent.request_device_token(layout, plan, nonce) {
        Ok(token) => token,
        Err(e) => {
            return SessionReport {
                outcome: SessionOutcome::RejectedAtManifest(e),
                accounting: acc,
            }
        }
    };
    // Initial CoAP request carrying the token.
    acc.charge_round_trip(link);
    acc.charge_from_device(link, DEVICE_TOKEN_LEN as u64);

    let Some(prepared) = server.prepare_update(&token) else {
        return SessionReport {
            outcome: SessionOutcome::NoUpdateAvailable,
            accounting: acc,
        };
    };
    // The border router forwards the (logical) byte stream end to end.
    let stream = router.forward(&prepared.image.to_bytes());

    let manifest_len = upkit_manifest::SIGNED_MANIFEST_LEN.min(stream.len());
    let (manifest_bytes, payload) = stream.split_at(manifest_len);

    // Manifest blocks.
    let mut manifest_ok = false;
    for block in manifest_bytes.chunks(link.mtu) {
        acc.charge_round_trip(link); // confirmed blockwise GET
        acc.charge_to_device(link, block.len() as u64);
        match agent.push_data(layout, block) {
            Ok(AgentPhase::ManifestAccepted) => manifest_ok = true,
            Ok(_) => {}
            Err(e) => {
                return SessionReport {
                    outcome: SessionOutcome::RejectedAtManifest(e),
                    accounting: acc,
                }
            }
        }
    }
    if !manifest_ok {
        return SessionReport {
            outcome: SessionOutcome::Incomplete,
            accounting: acc,
        };
    }

    // Payload blocks.
    let mut last_phase = AgentPhase::NeedMore;
    for block in payload.chunks(link.mtu) {
        acc.charge_round_trip(link);
        acc.charge_to_device(link, block.len() as u64);
        match agent.push_data(layout, block) {
            Ok(phase) => last_phase = phase,
            Err(e) => {
                return SessionReport {
                    outcome: SessionOutcome::RejectedAtFirmware(e),
                    accounting: acc,
                }
            }
        }
    }
    let outcome = if last_phase == AgentPhase::Complete {
        SessionOutcome::Complete
    } else {
        SessionOutcome::Incomplete
    };
    SessionReport {
        outcome,
        accounting: acc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tamper::Tamper;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use upkit_core::agent::{AgentConfig, AgentError};
    use upkit_core::generation::VendorServer;
    use upkit_core::image::FIRMWARE_OFFSET;
    use upkit_core::keys::TrustAnchors;
    use upkit_core::verifier::VerifyError;
    use upkit_crypto::backend::TinyCryptBackend;
    use upkit_crypto::ecdsa::SigningKey;
    use upkit_flash::{configuration_a, standard, FlashGeometry, SimFlash};
    use upkit_manifest::Version;

    const SLOT_SIZE: u32 = 4096 * 32;

    struct World {
        server: UpdateServer,
        agent: UpdateAgent,
        layout: MemoryLayout,
    }

    fn world(seed: u64, fw: Vec<u8>) -> World {
        let mut rng = StdRng::seed_from_u64(seed);
        let vendor = VendorServer::new(SigningKey::generate(&mut rng));
        let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
        server.publish(vendor.release(fw, Version(2), 0x100, 0xA));
        let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());
        let layout = configuration_a(
            Box::new(SimFlash::new(FlashGeometry {
                size: 4096 * 256,
                sector_size: 4096,
                read_micros_per_byte: 0,
                write_micros_per_byte: 0,
                erase_micros_per_sector: 0,
            })),
            SLOT_SIZE,
        )
        .unwrap();
        let agent = UpdateAgent::new(
            Arc::new(TinyCryptBackend),
            anchors,
            AgentConfig {
                device_id: 0xD,
                app_id: 0xA,
                supports_differential: true,
                content_key: None,
            },
        );
        World {
            server,
            agent,
            layout,
        }
    }

    fn plan() -> UpdatePlan {
        UpdatePlan {
            target_slot: standard::SLOT_B,
            current_slot: standard::SLOT_A,
            installed_version: Version(1),
            installed_size: 0,
            allowed_link_offsets: vec![0x100],
            max_firmware_size: SLOT_SIZE - FIRMWARE_OFFSET,
        }
    }

    #[test]
    fn push_session_completes_and_accounts() {
        let mut w = world(150, vec![0x77; 50_000]);
        let mut phone = Smartphone::new();
        let link = LinkProfile::ble_gatt();
        let report = run_push_session(
            &w.server,
            &mut phone,
            &mut w.agent,
            &mut w.layout,
            plan(),
            42,
            &link,
        );
        assert!(report.outcome.is_complete(), "{:?}", report.outcome);
        assert!(report.accounting.bytes_to_device > 50_000);
        assert!(report.accounting.elapsed_micros > 0);
    }

    #[test]
    fn pull_session_completes_with_round_trips_per_block() {
        let mut w = world(151, vec![0x66; 20_000]);
        let link = LinkProfile::ieee802154_6lowpan();
        let report = run_pull_session(
            &w.server,
            &BorderRouter::new(),
            &mut w.agent,
            &mut w.layout,
            plan(),
            43,
            &link,
        );
        assert!(report.outcome.is_complete(), "{:?}", report.outcome);
        // Every block is confirmed: round trips ≈ chunks.
        assert!(report.accounting.round_trips >= report.accounting.chunks / 2);
    }

    #[test]
    fn tampered_manifest_is_rejected_before_payload_bytes_flow() {
        let mut w = world(152, vec![0x55; 40_000]);
        // Flip a bit inside the manifest region.
        let mut phone = Smartphone::compromised(Tamper::FlipBit { offset: 30 });
        let link = LinkProfile::ble_gatt();
        let report = run_push_session(
            &w.server,
            &mut phone,
            &mut w.agent,
            &mut w.layout,
            plan(),
            44,
            &link,
        );
        match report.outcome {
            SessionOutcome::RejectedAtManifest(_) => {}
            other => panic!("expected manifest rejection, got {other:?}"),
        }
        // Early rejection: only manifest-sized data ever hit the radio.
        assert!(
            report.accounting.bytes_to_device <= upkit_manifest::SIGNED_MANIFEST_LEN as u64,
            "{} bytes flowed",
            report.accounting.bytes_to_device
        );
    }

    #[test]
    fn tampered_firmware_is_rejected_before_reboot() {
        let mut w = world(153, vec![0x44; 30_000]);
        let mut phone = Smartphone::compromised(Tamper::FlipBit {
            offset: upkit_manifest::SIGNED_MANIFEST_LEN + 15_000,
        });
        let link = LinkProfile::ble_gatt();
        let report = run_push_session(
            &w.server,
            &mut phone,
            &mut w.agent,
            &mut w.layout,
            plan(),
            45,
            &link,
        );
        match report.outcome {
            SessionOutcome::RejectedAtFirmware(AgentError::Verify(VerifyError::DigestMismatch)) => {
            }
            other => panic!("expected firmware digest rejection, got {other:?}"),
        }
    }

    #[test]
    fn truncating_proxy_leaves_session_incomplete() {
        let mut w = world(154, vec![0x33; 10_000]);
        let mut phone = Smartphone::compromised(Tamper::Truncate {
            keep: upkit_manifest::SIGNED_MANIFEST_LEN + 2_000,
        });
        let link = LinkProfile::ble_gatt();
        let report = run_push_session(
            &w.server,
            &mut phone,
            &mut w.agent,
            &mut w.layout,
            plan(),
            46,
            &link,
        );
        assert!(matches!(report.outcome, SessionOutcome::Incomplete));
    }

    #[test]
    fn replayed_image_from_previous_request_is_rejected() {
        // Run one honest session; capture its image; replay it to a new
        // request with a fresh nonce. The update-server signature binds the
        // old nonce, so the agent must reject it at the manifest.
        let mut w = world(155, vec![0x22; 5_000]);
        let link = LinkProfile::ble_gatt();
        let mut phone = Smartphone::new();
        let report = run_push_session(
            &w.server,
            &mut phone,
            &mut w.agent,
            &mut w.layout,
            plan(),
            100,
            &link,
        );
        assert!(report.outcome.is_complete());
        let captured = phone.stored().unwrap().image.to_bytes();

        // Fresh device state for a second update attempt.
        let mut w2 = world(155, vec![0x22; 5_000]);
        let mut replaying_phone = Smartphone::compromised(Tamper::Replay(captured));
        let report = run_push_session(
            &w2.server,
            &mut replaying_phone,
            &mut w2.agent,
            &mut w2.layout,
            plan(),
            101, // different nonce than the captured image's 100
            &link,
        );
        match report.outcome {
            SessionOutcome::RejectedAtManifest(AgentError::Verify(VerifyError::WrongNonce)) => {}
            other => panic!("expected nonce rejection, got {other:?}"),
        }
    }

    #[test]
    fn no_update_available_short_circuits() {
        let mut w = world(156, vec![0x11; 1_000]);
        let mut phone = Smartphone::new();
        let link = LinkProfile::ble_gatt();
        let mut p = plan();
        p.installed_version = Version(2); // already newest
        let report = run_push_session(
            &w.server,
            &mut phone,
            &mut w.agent,
            &mut w.layout,
            p,
            47,
            &link,
        );
        assert!(matches!(report.outcome, SessionOutcome::NoUpdateAvailable));
        assert_eq!(report.accounting.bytes_to_device, 0);
    }

    #[test]
    fn differential_pull_transfers_fraction_of_image() {
        // Publish v1 and a similar v2; device at v1 pulls a delta.
        let mut rng = StdRng::seed_from_u64(157);
        let vendor = VendorServer::new(SigningKey::generate(&mut rng));
        let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
        let v1: Vec<u8> = (0..60_000u32).map(|i| (i % 251) as u8).collect();
        let mut v2 = v1.clone();
        v2[1000..1050].fill(0xEE);
        server.publish(vendor.release(v1.clone(), Version(1), 0x100, 0xA));
        server.publish(vendor.release(v2.clone(), Version(2), 0x100, 0xA));
        let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());
        let mut layout = configuration_a(
            Box::new(SimFlash::new(FlashGeometry {
                size: 4096 * 256,
                sector_size: 4096,
                read_micros_per_byte: 0,
                write_micros_per_byte: 0,
                erase_micros_per_sector: 0,
            })),
            SLOT_SIZE,
        )
        .unwrap();
        // v1 must be installed for the patch base.
        layout.erase_slot(standard::SLOT_A).unwrap();
        layout
            .write_slot(standard::SLOT_A, FIRMWARE_OFFSET, &v1)
            .unwrap();
        let mut agent = UpdateAgent::new(
            Arc::new(TinyCryptBackend),
            anchors,
            AgentConfig {
                device_id: 0xD,
                app_id: 0xA,
                supports_differential: true,
                content_key: None,
            },
        );
        let link = LinkProfile::ieee802154_6lowpan();
        let mut p = plan();
        p.installed_size = v1.len() as u32;
        let report = run_pull_session(
            &server,
            &BorderRouter::new(),
            &mut agent,
            &mut layout,
            p,
            48,
            &link,
        );
        assert!(report.outcome.is_complete(), "{:?}", report.outcome);
        assert!(
            report.accounting.bytes_to_device < v2.len() as u64 / 4,
            "delta transfer should be small: {}",
            report.accounting.bytes_to_device
        );
        // The reconstructed firmware is v2.
        let mut stored = vec![0u8; v2.len()];
        layout
            .read_slot(standard::SLOT_B, FIRMWARE_OFFSET, &mut stored)
            .unwrap();
        assert_eq!(stored, v2);
    }

    #[test]
    fn wrapper_equals_reference_on_an_honest_push() {
        let mut w1 = world(160, vec![0x5A; 30_000]);
        let mut w2 = world(160, vec![0x5A; 30_000]);
        let link = LinkProfile::ble_gatt();
        let wrapped = run_push_session(
            &w1.server,
            &mut Smartphone::new(),
            &mut w1.agent,
            &mut w1.layout,
            plan(),
            60,
            &link,
        );
        let reference = reference_push_session(
            &w2.server,
            &mut Smartphone::new(),
            &mut w2.agent,
            &mut w2.layout,
            plan(),
            60,
            &link,
        );
        assert_eq!(wrapped, reference);
    }
}
