//! Attack/fault injection on in-transit update images.
//!
//! UpKit's threat model (Sect. III) assumes the smartphone or gateway may
//! be compromised: it can drop, corrupt, truncate, or replay data, but —
//! because it holds no signing keys — it can never *forge* an acceptable
//! update. These injectors implement exactly those capabilities so the test
//! suite and the security experiments can exercise them.

/// A transformation a compromised proxy can apply to the bytes it forwards.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Tamper {
    /// Forward faithfully (an honest proxy).
    None,
    /// Flip one bit at `offset` (transmission corruption or malice).
    FlipBit {
        /// Byte offset whose lowest bit is flipped.
        offset: usize,
    },
    /// Forward only the first `keep` bytes, then stop (drop attack).
    Truncate {
        /// Number of leading bytes to forward.
        keep: usize,
    },
    /// Replace the entire stream with previously captured bytes (replay
    /// of an old, once-valid update image).
    Replay(Vec<u8>),
}

impl Tamper {
    /// Applies the tamper to a full message, returning what the device
    /// actually receives.
    #[must_use]
    pub fn apply(&self, data: &[u8]) -> Vec<u8> {
        match self {
            Self::None => data.to_vec(),
            Self::FlipBit { offset } => {
                let mut out = data.to_vec();
                if let Some(byte) = out.get_mut(*offset) {
                    *byte ^= 1;
                }
                out
            }
            Self::Truncate { keep } => data[..(*keep).min(data.len())].to_vec(),
            Self::Replay(old) => old.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        assert_eq!(Tamper::None.apply(b"payload"), b"payload");
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let out = Tamper::FlipBit { offset: 2 }.apply(b"abc");
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], b'a');
        assert_eq!(out[1], b'b');
        assert_eq!(out[2], b'c' ^ 1);
    }

    #[test]
    fn flip_bit_out_of_range_is_noop() {
        assert_eq!(Tamper::FlipBit { offset: 99 }.apply(b"ab"), b"ab");
    }

    #[test]
    fn truncate_keeps_prefix() {
        assert_eq!(Tamper::Truncate { keep: 2 }.apply(b"abcdef"), b"ab");
        assert_eq!(Tamper::Truncate { keep: 100 }.apply(b"ab"), b"ab");
    }

    #[test]
    fn replay_substitutes_captured_bytes() {
        let captured = b"old image".to_vec();
        assert_eq!(
            Tamper::Replay(captured.clone()).apply(b"new image"),
            captured
        );
    }
}
