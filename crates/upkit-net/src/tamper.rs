//! Attack/fault injection on in-transit update images.
//!
//! UpKit's threat model (Sect. III) assumes the smartphone or gateway may
//! be compromised: it can drop, corrupt, truncate, or replay data, but —
//! because it holds no signing keys — it can never *forge* an acceptable
//! update. These injectors implement exactly those capabilities so the test
//! suite and the security experiments can exercise them.
//!
//! Two granularities are provided: [`Tamper`] mutates a whole captured
//! message before it is (re)played, and [`FrameAdversary`] sits *inside* a
//! live stepped session as a [`SessionEndpoints`] wrapper, mutating one
//! link frame in flight — corrupt, reorder, duplicate, inject, drop — or
//! substituting the entire resolved stream (a cross-version replay).

use upkit_core::agent::{AgentError, AgentPhase};
use upkit_manifest::DeviceToken;

use crate::session::{SessionEndpoints, SessionStream, StreamResolution};

/// A transformation a compromised proxy can apply to the bytes it forwards.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Tamper {
    /// Forward faithfully (an honest proxy).
    None,
    /// Flip one bit at `offset` (transmission corruption or malice).
    FlipBit {
        /// Byte offset whose lowest bit is flipped.
        offset: usize,
    },
    /// Forward only the first `keep` bytes, then stop (drop attack).
    Truncate {
        /// Number of leading bytes to forward.
        keep: usize,
    },
    /// Replace the entire stream with previously captured bytes (replay
    /// of an old, once-valid update image).
    Replay(Vec<u8>),
}

impl Tamper {
    /// Applies the tamper to a full message, returning what the device
    /// actually receives.
    #[must_use]
    pub fn apply(&self, data: &[u8]) -> Vec<u8> {
        match self {
            Self::None => data.to_vec(),
            Self::FlipBit { offset } => {
                let mut out = data.to_vec();
                if let Some(byte) = out.get_mut(*offset) {
                    *byte ^= 1;
                }
                out
            }
            Self::Truncate { keep } => data[..(*keep).min(data.len())].to_vec(),
            Self::Replay(old) => old.clone(),
        }
    }
}

/// A mutation applied to the live frame sequence of a stepped session.
///
/// Frames are numbered 0-based in delivery order across the whole session
/// (manifest frames first, then payload frames), exactly as the device
/// radio sees them.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameTamper {
    /// Forward every frame faithfully.
    None,
    /// XOR one bit of frame `frame` (`bit` wraps around the frame length).
    Corrupt {
        /// Target frame index.
        frame: u64,
        /// Bit position to flip, modulo the frame's bit length.
        bit: u32,
    },
    /// Withhold frame `frame` and deliver it *after* its successor — an
    /// adjacent swap, the smallest possible reordering.
    Reorder {
        /// Target frame index.
        frame: u64,
    },
    /// Deliver frame `frame` twice back to back.
    Duplicate {
        /// Target frame index.
        frame: u64,
    },
    /// Insert a forged frame (same length, every byte `fill`) immediately
    /// before frame `frame`.
    Inject {
        /// Target frame index.
        frame: u64,
        /// Byte value the forged frame is filled with.
        fill: u8,
    },
    /// Drop frame `frame` entirely (the classic lossy-proxy attack, but
    /// aimed at one precise frame).
    Drop {
        /// Target frame index.
        frame: u64,
    },
    /// Substitute the entire resolved stream with a captured one — a
    /// replay of an older, once-valid release across versions (the
    /// downgrade attack the device token's freshness nonce exists to
    /// stop).
    ReplaceStream(SessionStream),
}

/// A compromised proxy interposed between a stepped session and its real
/// endpoints: forwards everything except the one mutation its
/// [`FrameTamper`] describes.
///
/// Because it implements [`SessionEndpoints`], it drives the *real*
/// agent/pipeline acceptance path through `PushSession`/`PullSession`
/// unchanged — the session machinery cannot tell an honest proxy from
/// this one, which is exactly the paper's threat model.
#[derive(Debug)]
pub struct FrameAdversary<E> {
    inner: E,
    tamper: FrameTamper,
    next_frame: u64,
    held: Option<Vec<u8>>,
}

impl<E> FrameAdversary<E> {
    /// Wraps `inner`, applying `tamper` to the frame stream.
    #[must_use]
    pub fn new(inner: E, tamper: FrameTamper) -> Self {
        Self {
            inner,
            tamper,
            next_frame: 0,
            held: None,
        }
    }

    /// Frames that have passed through the adversary so far.
    #[must_use]
    pub fn frames_seen(&self) -> u64 {
        self.next_frame
    }

    /// Unwraps the inner endpoints.
    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: SessionEndpoints> SessionEndpoints for FrameAdversary<E> {
    fn request_token(&mut self) -> Result<DeviceToken, AgentError> {
        self.inner.request_token()
    }

    fn resolve_stream(&mut self, token: &DeviceToken) -> StreamResolution {
        let resolved = self.inner.resolve_stream(token);
        if let FrameTamper::ReplaceStream(captured) = &self.tamper {
            // The proxy controls what it forwards: whatever the honest
            // path resolved, the device receives the captured stream.
            return StreamResolution::Stream(captured.clone());
        }
        resolved
    }

    fn deliver(&mut self, chunk: &[u8]) -> Result<AgentPhase, AgentError> {
        let index = self.next_frame;
        self.next_frame += 1;
        match &self.tamper {
            FrameTamper::Corrupt { frame, bit } if *frame == index => {
                let mut corrupted = chunk.to_vec();
                if !corrupted.is_empty() {
                    let bit = *bit as usize % (corrupted.len() * 8);
                    corrupted[bit / 8] ^= 1 << (bit % 8);
                }
                self.inner.deliver(&corrupted)
            }
            FrameTamper::Reorder { frame } if *frame == index => {
                // Withheld until the next frame goes out; if the session
                // ends first the frame is simply lost.
                self.held = Some(chunk.to_vec());
                Ok(AgentPhase::NeedMore)
            }
            FrameTamper::Duplicate { frame } if *frame == index => {
                self.inner.deliver(chunk)?;
                self.inner.deliver(chunk)
            }
            FrameTamper::Inject { frame, fill } if *frame == index => {
                let forged = vec![*fill; chunk.len().max(1)];
                self.inner.deliver(&forged)?;
                self.inner.deliver(chunk)
            }
            FrameTamper::Drop { frame } if *frame == index => Ok(AgentPhase::NeedMore),
            _ => {
                let phase = self.inner.deliver(chunk)?;
                match self.held.take() {
                    // The withheld frame follows its successor.
                    Some(held) => self.inner.deliver(&held),
                    None => Ok(phase),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        assert_eq!(Tamper::None.apply(b"payload"), b"payload");
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let out = Tamper::FlipBit { offset: 2 }.apply(b"abc");
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], b'a');
        assert_eq!(out[1], b'b');
        assert_eq!(out[2], b'c' ^ 1);
    }

    #[test]
    fn flip_bit_out_of_range_is_noop() {
        assert_eq!(Tamper::FlipBit { offset: 99 }.apply(b"ab"), b"ab");
    }

    #[test]
    fn truncate_keeps_prefix() {
        assert_eq!(Tamper::Truncate { keep: 2 }.apply(b"abcdef"), b"ab");
        assert_eq!(Tamper::Truncate { keep: 100 }.apply(b"ab"), b"ab");
    }

    #[test]
    fn replay_substitutes_captured_bytes() {
        let captured = b"old image".to_vec();
        assert_eq!(
            Tamper::Replay(captured.clone()).apply(b"new image"),
            captured
        );
    }

    /// Records every frame the (stubbed) device receives.
    struct Recorder {
        frames: Vec<Vec<u8>>,
    }

    impl Recorder {
        fn new() -> Self {
            Self { frames: Vec::new() }
        }
    }

    impl SessionEndpoints for Recorder {
        fn request_token(&mut self) -> Result<DeviceToken, AgentError> {
            Ok(DeviceToken {
                device_id: 1,
                nonce: 1,
                current_version: upkit_manifest::Version(1),
            })
        }
        fn resolve_stream(&mut self, _token: &DeviceToken) -> StreamResolution {
            StreamResolution::NoUpdate
        }
        fn deliver(&mut self, chunk: &[u8]) -> Result<AgentPhase, AgentError> {
            self.frames.push(chunk.to_vec());
            Ok(AgentPhase::NeedMore)
        }
    }

    fn feed(tamper: FrameTamper, frames: &[&[u8]]) -> Vec<Vec<u8>> {
        let mut adversary = FrameAdversary::new(Recorder::new(), tamper);
        for frame in frames {
            adversary.deliver(frame).unwrap();
        }
        assert_eq!(adversary.frames_seen(), frames.len() as u64);
        adversary.into_inner().frames
    }

    #[test]
    fn frame_none_forwards_faithfully() {
        let got = feed(FrameTamper::None, &[b"aa", b"bb", b"cc"]);
        assert_eq!(got, vec![b"aa".to_vec(), b"bb".to_vec(), b"cc".to_vec()]);
    }

    #[test]
    fn frame_corrupt_flips_exactly_one_bit_of_the_target() {
        let got = feed(FrameTamper::Corrupt { frame: 1, bit: 9 }, &[b"aa", b"bb"]);
        assert_eq!(got[0], b"aa");
        assert_eq!(got[1], [b'b', b'b' ^ 2]);
        // Bit positions wrap instead of missing the frame.
        let wrapped = feed(FrameTamper::Corrupt { frame: 0, bit: 16 }, &[b"aa"]);
        assert_eq!(wrapped[0], [b'a' ^ 1, b'a']);
    }

    #[test]
    fn frame_reorder_swaps_adjacent_frames() {
        let got = feed(FrameTamper::Reorder { frame: 1 }, &[b"aa", b"bb", b"cc"]);
        assert_eq!(got, vec![b"aa".to_vec(), b"cc".to_vec(), b"bb".to_vec()]);
    }

    #[test]
    fn frame_reorder_of_final_frame_loses_it() {
        let got = feed(FrameTamper::Reorder { frame: 2 }, &[b"aa", b"bb", b"cc"]);
        assert_eq!(got, vec![b"aa".to_vec(), b"bb".to_vec()]);
    }

    #[test]
    fn frame_duplicate_repeats_the_target() {
        let got = feed(FrameTamper::Duplicate { frame: 0 }, &[b"aa", b"bb"]);
        assert_eq!(got, vec![b"aa".to_vec(), b"aa".to_vec(), b"bb".to_vec()]);
    }

    #[test]
    fn frame_inject_inserts_a_forged_frame_before_the_target() {
        let got = feed(FrameTamper::Inject { frame: 1, fill: 0 }, &[b"aa", b"bb"]);
        assert_eq!(got, vec![b"aa".to_vec(), vec![0, 0], b"bb".to_vec()]);
    }

    #[test]
    fn frame_drop_omits_the_target() {
        let got = feed(FrameTamper::Drop { frame: 1 }, &[b"aa", b"bb", b"cc"]);
        assert_eq!(got, vec![b"aa".to_vec(), b"cc".to_vec()]);
    }

    #[test]
    fn replace_stream_substitutes_the_resolution() {
        let captured = SessionStream {
            manifest: b"old manifest".to_vec(),
            payload: b"old payload".to_vec(),
        };
        let mut adversary = FrameAdversary::new(
            Recorder::new(),
            FrameTamper::ReplaceStream(captured.clone()),
        );
        let token = adversary.request_token().unwrap();
        match adversary.resolve_stream(&token) {
            StreamResolution::Stream(stream) => assert_eq!(stream, captured),
            other => panic!("expected the captured stream, got {other:?}"),
        }
    }
}
