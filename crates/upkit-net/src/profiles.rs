//! Link profiles and transfer accounting.
//!
//! The paper's two network configurations are a BLE GATT connection (push,
//! smartphone → device) and an IEEE 802.15.4 / 6LoWPAN network with a
//! border router (pull, device → update server over CoAP). The simulator
//! does not move real radio frames; it moves the real bytes and charges
//! each chunk against a [`LinkProfile`] whose constants are set to
//! datasheet-order-of-magnitude values for the paper's platforms.

/// Timing model of one radio link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkProfile {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Maximum payload bytes per link-layer chunk.
    pub mtu: usize,
    /// Sustained goodput in bytes per second.
    pub throughput_bytes_per_sec: u64,
    /// Round-trip time in microseconds (request/response exchanges).
    pub rtt_micros: u64,
    /// Fixed per-chunk overhead in microseconds (connection-event
    /// scheduling, MAC/6LoWPAN framing).
    pub per_chunk_overhead_micros: u64,
}

impl LinkProfile {
    /// BLE 4.2 GATT notifications at a conservative connection interval.
    ///
    /// Calibrated so a 100 kB push propagation lands near the paper's
    /// 47.7 s (Fig. 8a): ~2.1 kB/s effective goodput.
    #[must_use]
    pub fn ble_gatt() -> Self {
        Self {
            name: "BLE GATT",
            mtu: 244,
            throughput_bytes_per_sec: 2_500,
            rtt_micros: 60_000,
            per_chunk_overhead_micros: 2_500,
        }
    }

    /// IEEE 802.15.4 + 6LoWPAN + CoAP blockwise: 64-byte confirmed blocks,
    /// each one a request/response round trip (charged by the pull driver).
    ///
    /// Calibrated so a 100 kB pull propagation lands near the paper's
    /// 41.7 s (Fig. 8a) — slightly *faster* than BLE push despite the
    /// smaller blocks, as the paper measures.
    #[must_use]
    pub fn ieee802154_6lowpan() -> Self {
        Self {
            name: "802.15.4/6LoWPAN",
            mtu: 64,
            throughput_bytes_per_sec: 12_500,
            rtt_micros: 14_000,
            per_chunk_overhead_micros: 4_000,
        }
    }

    /// The gateway's upstream/backhaul link (gateway ↔ update server over
    /// the Internet): orders of magnitude faster than the constrained
    /// radios, but not free — a caching proxy still serializes its block
    /// fetches on it, which is where shared-capacity contention between
    /// overlapping campaigns shows up.
    #[must_use]
    pub fn wifi_backhaul() -> Self {
        Self {
            name: "WiFi backhaul",
            mtu: 1_024,
            throughput_bytes_per_sec: 250_000,
            rtt_micros: 20_000,
            per_chunk_overhead_micros: 500,
        }
    }

    /// The same radio relayed over `hops` store-and-forward mesh links:
    /// round trips and per-chunk scheduling overhead scale with the hop
    /// count while the MTU and goodput stay those of the single radio.
    /// `hops = 1` (or 0) is the link itself.
    #[must_use]
    pub fn multi_hop(&self, hops: u32) -> Self {
        let hops = u64::from(hops.max(1));
        Self {
            name: self.name,
            mtu: self.mtu,
            throughput_bytes_per_sec: self.throughput_bytes_per_sec,
            rtt_micros: self.rtt_micros.saturating_mul(hops),
            per_chunk_overhead_micros: self.per_chunk_overhead_micros.saturating_mul(hops),
        }
    }

    /// Microseconds to move `bytes` as payload (excluding per-chunk costs).
    #[must_use]
    pub fn payload_micros(&self, bytes: u64) -> u64 {
        bytes.saturating_mul(1_000_000) / self.throughput_bytes_per_sec.max(1)
    }

    /// Full time to move `bytes` over this link in one direction: payload
    /// time plus per-chunk overhead plus one round trip of latency. The
    /// caching proxy charges upstream block fetches with this.
    #[must_use]
    pub fn transfer_micros(&self, bytes: u64) -> u64 {
        self.payload_micros(bytes)
            + self.chunks_for(bytes) * self.per_chunk_overhead_micros
            + self.rtt_micros
    }

    /// Number of MTU-sized chunks needed for `bytes`.
    #[must_use]
    pub fn chunks_for(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.mtu as u64)
    }
}

/// Cumulative radio accounting for one update session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransferAccounting {
    /// Payload bytes moved toward the device.
    pub bytes_to_device: u64,
    /// Payload bytes moved from the device (tokens, acknowledgements).
    pub bytes_from_device: u64,
    /// Link-layer chunks used.
    pub chunks: u64,
    /// Round trips performed.
    pub round_trips: u64,
    /// Total radio-on time in microseconds.
    pub elapsed_micros: u64,
}

impl TransferAccounting {
    /// Charges a data transfer toward the device.
    pub fn charge_to_device(&mut self, link: &LinkProfile, bytes: u64) {
        let chunks = link.chunks_for(bytes);
        self.bytes_to_device += bytes;
        self.chunks += chunks;
        self.elapsed_micros += link.payload_micros(bytes) + chunks * link.per_chunk_overhead_micros;
    }

    /// Charges a data transfer from the device.
    pub fn charge_from_device(&mut self, link: &LinkProfile, bytes: u64) {
        let chunks = link.chunks_for(bytes);
        self.bytes_from_device += bytes;
        self.chunks += chunks;
        self.elapsed_micros += link.payload_micros(bytes) + chunks * link.per_chunk_overhead_micros;
    }

    /// Charges a request/response round trip.
    pub fn charge_round_trip(&mut self, link: &LinkProfile) {
        self.round_trips += 1;
        self.elapsed_micros += link.rtt_micros;
    }

    /// Charges radio-idle waiting time (retransmission timeouts): no bytes
    /// or chunks move, only virtual time passes.
    pub fn charge_wait(&mut self, micros: u64) {
        self.elapsed_micros += micros;
    }

    /// Merges another accounting record into this one.
    pub fn merge(&mut self, other: &TransferAccounting) {
        self.bytes_to_device += other.bytes_to_device;
        self.bytes_from_device += other.bytes_from_device;
        self.chunks += other.chunks;
        self.round_trips += other.round_trips;
        self.elapsed_micros += other.elapsed_micros;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_time_scales_linearly() {
        let link = LinkProfile::ble_gatt();
        assert_eq!(link.payload_micros(0), 0);
        assert_eq!(
            link.payload_micros(2 * link.throughput_bytes_per_sec),
            2_000_000
        );
    }

    #[test]
    fn chunk_count_rounds_up() {
        let link = LinkProfile::ieee802154_6lowpan();
        assert_eq!(link.chunks_for(0), 0);
        assert_eq!(link.chunks_for(1), 1);
        assert_eq!(link.chunks_for(64), 1);
        assert_eq!(link.chunks_for(65), 2);
    }

    #[test]
    fn accounting_accumulates() {
        let link = LinkProfile::ble_gatt();
        let mut acc = TransferAccounting::default();
        acc.charge_to_device(&link, 1000);
        acc.charge_from_device(&link, 10);
        acc.charge_round_trip(&link);
        assert_eq!(acc.bytes_to_device, 1000);
        assert_eq!(acc.bytes_from_device, 10);
        assert_eq!(acc.round_trips, 1);
        let expected = link.payload_micros(1000)
            + link.chunks_for(1000) * link.per_chunk_overhead_micros
            + link.payload_micros(10)
            + link.per_chunk_overhead_micros
            + link.rtt_micros;
        assert_eq!(acc.elapsed_micros, expected);
    }

    #[test]
    fn merge_sums_fields() {
        let link = LinkProfile::ble_gatt();
        let mut a = TransferAccounting::default();
        a.charge_to_device(&link, 500);
        let mut b = TransferAccounting::default();
        b.charge_round_trip(&link);
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.bytes_to_device, 500);
        assert_eq!(merged.round_trips, 1);
        assert_eq!(merged.elapsed_micros, a.elapsed_micros + b.elapsed_micros);
    }

    #[test]
    fn multi_hop_scales_latency_not_goodput() {
        let one = LinkProfile::ieee802154_6lowpan();
        let three = one.multi_hop(3);
        assert_eq!(three.mtu, one.mtu);
        assert_eq!(three.throughput_bytes_per_sec, one.throughput_bytes_per_sec);
        assert_eq!(three.rtt_micros, 3 * one.rtt_micros);
        assert_eq!(
            three.per_chunk_overhead_micros,
            3 * one.per_chunk_overhead_micros
        );
        // Degenerate hop counts collapse to the single link.
        assert_eq!(one.multi_hop(0), one);
        assert_eq!(one.multi_hop(1), one);
    }

    #[test]
    fn transfer_micros_includes_latency_and_overhead() {
        let link = LinkProfile::wifi_backhaul();
        let bytes = 4_096u64;
        assert_eq!(
            link.transfer_micros(bytes),
            link.payload_micros(bytes)
                + link.chunks_for(bytes) * link.per_chunk_overhead_micros
                + link.rtt_micros
        );
        // The backhaul moves a block orders of magnitude faster than the
        // constrained radio moves it.
        let lowpan = LinkProfile::ieee802154_6lowpan();
        assert!(link.transfer_micros(4_096) * 10 < lowpan.transfer_micros(4_096));
    }

    #[test]
    fn propagation_shape_matches_fig8a() {
        // Fig. 8a: 100 kB propagation takes ~47.7 s over BLE push and
        // ~41.7 s over 6LoWPAN pull — pull is slightly faster on the wire
        // (the pull total only loses in the loading phase).
        let ble = LinkProfile::ble_gatt();
        let lowpan = LinkProfile::ieee802154_6lowpan();
        let bytes = 100_000u64;
        let mut push = TransferAccounting::default();
        push.charge_to_device(&ble, bytes);
        let mut pull = TransferAccounting::default();
        pull.charge_to_device(&lowpan, bytes);
        for _ in 0..lowpan.chunks_for(bytes) {
            pull.charge_round_trip(&lowpan);
        }
        let push_secs = push.elapsed_micros as f64 / 1e6;
        let pull_secs = pull.elapsed_micros as f64 / 1e6;
        assert!((40.0..55.0).contains(&push_secs), "push {push_secs:.1}s");
        assert!((35.0..48.0).contains(&pull_secs), "pull {pull_secs:.1}s");
        assert!(
            pull_secs < push_secs,
            "pull propagation is faster on the wire"
        );
    }
}
