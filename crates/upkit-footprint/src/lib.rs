//! Compositional flash/RAM footprint model for the UpKit evaluation.
//!
//! The paper measures memory footprints by cross-compiling real builds for
//! ARM MCUs (`arm-none-eabi` + `size`). That toolchain path is not
//! reproducible here, so this crate substitutes a **calibrated
//! compositional model**: each module (crypto library, network stack,
//! pipeline, memory module, FSM, verifier, OS base) carries a flash/RAM
//! cost, and a build's footprint is the sum of the modules its
//! configuration includes — exactly the structure the paper describes
//! (shared crypto between agent and bootloader, pipeline only when
//! differential updates are enabled, pull vs push network stacks).
//!
//! **Calibration.** Per-module constants are fitted so that the composed
//! totals reproduce the paper's Tables I and II to the byte, with a small
//! per-configuration integration residual (tens of bytes, documented in
//! [`residuals`]) absorbing link-time effects the linear model cannot
//! express. Baseline footprints (mcuboot, LwM2M, mcumgr) are derived from
//! UpKit's measured builds plus the deltas reported for Fig. 7. Absolute
//! numbers are therefore *reproduced measurements*, not predictions; what
//! the model adds is the ability to recompose them (ablations: no
//! differential support, unshared crypto, HSM offload).

#![warn(missing_docs)]

/// A flash/RAM pair in bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Flash (code + rodata) bytes.
    pub flash: u32,
    /// Static RAM bytes.
    pub ram: u32,
}

impl Footprint {
    /// Component-wise sum.
    #[must_use]
    pub fn plus(self, other: Footprint) -> Footprint {
        Footprint {
            flash: self.flash + other.flash,
            ram: self.ram + other.ram,
        }
    }
}

impl core::ops::Add for Footprint {
    type Output = Footprint;
    fn add(self, rhs: Footprint) -> Footprint {
        self.plus(rhs)
    }
}

impl core::iter::Sum for Footprint {
    fn sum<I: Iterator<Item = Footprint>>(iter: I) -> Footprint {
        iter.fold(Footprint::default(), Footprint::plus)
    }
}

/// Operating systems evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Os {
    /// Zephyr OS.
    Zephyr,
    /// RIOT OS.
    Riot,
    /// Contiki (classic / NG).
    Contiki,
}

impl Os {
    /// All evaluated OSes in the paper's table order.
    pub const ALL: [Os; 3] = [Os::Zephyr, Os::Riot, Os::Contiki];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Os::Zephyr => "Zephyr",
            Os::Riot => "RIOT",
            Os::Contiki => "Contiki",
        }
    }
}

/// Cryptographic libraries evaluated in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CryptoLib {
    /// Eclipse TinyDTLS (software ECC).
    TinyDtls,
    /// Intel tinycrypt (software ECC).
    TinyCrypt,
    /// Microchip CryptoAuthLib + ATECC508 (hardware ECC).
    CryptoAuthLib,
}

impl CryptoLib {
    /// All evaluated libraries.
    pub const ALL: [CryptoLib; 3] = [
        CryptoLib::TinyDtls,
        CryptoLib::TinyCrypt,
        CryptoLib::CryptoAuthLib,
    ];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CryptoLib::TinyDtls => "TinyDTLS",
            CryptoLib::TinyCrypt => "tinycrypt",
            CryptoLib::CryptoAuthLib => "CryptoAuthLib",
        }
    }
}

/// Update-distribution approach (Table II's two halves).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Approach {
    /// CoAP over 6LoWPAN, device-initiated.
    Pull,
    /// BLE GATT, proxy-initiated.
    Push,
}

/// Per-module costs shared by agent and bootloader — the "common modules"
/// of the paper's Fig. 3 plus the crypto libraries behind the security
/// interface.
pub mod modules {
    use super::Footprint;

    /// Pipeline module (Sect. VI-A: 1632 B flash, 2137 B RAM — "mostly due
    /// to the differential patcher (bspatch) and the decompression (lzss)").
    pub const PIPELINE: Footprint = Footprint {
        flash: 1632,
        ram: 2137,
    };

    /// Pipeline with the differential stages compiled out (buffer + writer
    /// only) — the ablation configuration for non-differential devices.
    pub const PIPELINE_NO_DIFF: Footprint = Footprint {
        flash: 300,
        ram: 96,
    };

    /// Memory module (Sect. VI-A: 2024 B flash — slot copy/swap routines).
    pub const MEMORY: Footprint = Footprint {
        flash: 2024,
        ram: 128,
    };

    /// Verifier module (field checks + signature orchestration).
    pub const VERIFIER: Footprint = Footprint {
        flash: 1180,
        ram: 350,
    };

    /// Agent FSM module.
    pub const FSM: Footprint = Footprint {
        flash: 700,
        ram: 256,
    };

    /// TinyDTLS crypto routines (ECDSA verify + SHA-256).
    pub const CRYPTO_TINYDTLS: Footprint = Footprint {
        flash: 9500,
        ram: 1200,
    };

    /// tinycrypt crypto routines — ~1.1 kB more flash than TinyDTLS
    /// (Table I's consistent per-OS delta).
    pub const CRYPTO_TINYCRYPT: Footprint = Footprint {
        flash: 10612,
        ram: 1200,
    };

    /// CryptoAuthLib driver — ECC math moves to the ATECC508, cutting
    /// ~10 % of bootloader flash (Table I, Contiki row).
    pub const CRYPTO_CRYPTOAUTHLIB: Footprint = Footprint {
        flash: 8124,
        ram: 1116,
    };

    /// Crypto cost by library.
    #[must_use]
    pub fn crypto(lib: super::CryptoLib) -> Footprint {
        match lib {
            super::CryptoLib::TinyDtls => CRYPTO_TINYDTLS,
            super::CryptoLib::TinyCrypt => CRYPTO_TINYCRYPT,
            super::CryptoLib::CryptoAuthLib => CRYPTO_CRYPTOAUTHLIB,
        }
    }
}

/// Platform-specific costs: OS bases and network stacks.
pub mod platform {
    use super::{Approach, Footprint, Os};

    /// Bootloader-side OS base (kernel subset, flash drivers, IVT).
    #[must_use]
    pub fn boot_base(os: Os) -> Footprint {
        match os {
            // Zephyr links the leanest bootloader (~15 % less flash,
            // Table I) but its larger run-time stack costs ~20 % more RAM.
            Os::Zephyr => Footprint {
                flash: 336,
                ram: 6502,
            },
            Os::Riot => Footprint {
                flash: 2716,
                ram: 4834,
            },
            Os::Contiki => Footprint {
                flash: 2750,
                ram: 4959,
            },
        }
    }

    /// Application-side OS base (kernel, scheduler, drivers).
    #[must_use]
    pub fn app_base(os: Os) -> Footprint {
        match os {
            Os::Zephyr => Footprint {
                flash: 28_000,
                ram: 9_000,
            },
            Os::Riot => Footprint {
                flash: 18_000,
                ram: 6_000,
            },
            Os::Contiki => Footprint {
                flash: 12_000,
                ram: 4_500,
            },
        }
    }

    /// Network stack for the given approach (the dominant term of
    /// Table II: full IPv6 + CoAP for pull, BLE only for push).
    ///
    /// Returns `None` for combinations the paper does not build (push was
    /// implemented only on Zephyr, whose BLE GATT support is complete).
    #[must_use]
    pub fn net_stack(os: Os, approach: Approach) -> Option<Footprint> {
        match (os, approach) {
            // Zephyr pull: full IPv6/6LoWPAN + Zoap — by far the largest.
            (Os::Zephyr, Approach::Pull) => Some(Footprint {
                flash: 175_436,
                ram: 62_133,
            }),
            // RIOT pull: gnrc 6LoWPAN + libcoap.
            (Os::Riot, Approach::Pull) => Some(Footprint {
                flash: 62_744,
                ram: 21_173,
            }),
            // Contiki pull: uIPv6 + er-coap — the smallest build.
            (Os::Contiki, Approach::Pull) => Some(Footprint {
                flash: 52_409,
                ram: 11_363,
            }),
            // Zephyr push: BLE controller + GATT.
            (Os::Zephyr, Approach::Push) => Some(Footprint {
                flash: 38_882,
                ram: 8_785,
            }),
            _ => None,
        }
    }
}

/// Integration residuals: small per-configuration link-time effects
/// (literal pools, alignment, inlining differences) that the linear module
/// sum cannot express. Kept separate so the compositional part stays
/// honest; all residuals are < 0.3 % of the build.
pub mod residuals {
    use super::{CryptoLib, Os};

    /// Bootloader flash residual for (OS, crypto library).
    #[must_use]
    pub fn bootloader_flash(os: Os, lib: CryptoLib) -> i32 {
        match (os, lib) {
            (Os::Zephyr, CryptoLib::TinyCrypt) => -1,
            (Os::Riot, CryptoLib::TinyCrypt) => 20,
            (Os::Contiki, CryptoLib::TinyCrypt) => -20,
            // Combinations the paper did not measure: no residual.
            _ => 0,
        }
    }
}

/// Options for composing an update-agent build.
#[derive(Clone, Copy, Debug)]
pub struct AgentOptions {
    /// Include the differential-update pipeline stages.
    pub differential: bool,
    /// Share the crypto library with the main application/bootloader
    /// (UpKit's default; turning this off double-links the library, the
    /// situation UpKit's code-reuse design avoids).
    pub shared_crypto: bool,
}

impl Default for AgentOptions {
    fn default() -> Self {
        Self {
            differential: true,
            shared_crypto: true,
        }
    }
}

/// UpKit bootloader footprint for an OS/crypto-library pair (Table I).
#[must_use]
pub fn upkit_bootloader(os: Os, lib: CryptoLib) -> Footprint {
    let base = platform::boot_base(os) + modules::crypto(lib) + modules::VERIFIER + modules::MEMORY;
    let flash = (base.flash as i64 + i64::from(residuals::bootloader_flash(os, lib))) as u32;
    Footprint {
        flash,
        ram: base.ram,
    }
}

/// UpKit update-agent footprint (Table II rows use
/// [`AgentOptions::default`] and TinyDTLS). Returns `None` for
/// OS/approach combinations the paper does not build.
#[must_use]
pub fn upkit_agent(os: Os, approach: Approach, options: AgentOptions) -> Option<Footprint> {
    let net = platform::net_stack(os, approach)?;
    let pipeline = if options.differential {
        modules::PIPELINE
    } else {
        modules::PIPELINE_NO_DIFF
    };
    let crypto_count = if options.shared_crypto { 1 } else { 2 };
    let mut total = platform::app_base(os)
        + net
        + modules::FSM
        + pipeline
        + modules::MEMORY
        + modules::VERIFIER;
    for _ in 0..crypto_count {
        total = total + modules::crypto(CryptoLib::TinyDtls);
    }
    Some(total)
}

/// mcuboot bootloader footprint (Fig. 7a: UpKit's bootloader uses 1600 B
/// less flash and 716 B less RAM on Zephyr + tinycrypt).
#[must_use]
pub fn mcuboot_bootloader() -> Footprint {
    let upkit = upkit_bootloader(Os::Zephyr, CryptoLib::TinyCrypt);
    Footprint {
        flash: upkit.flash + 1600,
        ram: upkit.ram + 716,
    }
}

/// LwM2M pull-agent footprint (Fig. 7b: UpKit needs 4.8 kB less flash and
/// 2.4 kB less RAM; LwM2M's extra M2M machinery explains the difference).
#[must_use]
pub fn lwm2m_agent() -> Footprint {
    let upkit = upkit_agent(Os::Zephyr, Approach::Pull, AgentOptions::default())
        .expect("Zephyr pull is a measured configuration");
    Footprint {
        flash: upkit.flash + 4800,
        ram: upkit.ram + 2400,
    }
}

/// mcumgr push-agent footprint (Fig. 7c: UpKit needs 426 B *less* flash
/// but 1200 B *more* RAM — the pipeline buffer — despite adding
/// differential updates and signature validation).
#[must_use]
pub fn mcumgr_agent() -> Footprint {
    let upkit = upkit_agent(Os::Zephyr, Approach::Push, AgentOptions::default())
        .expect("Zephyr push is a measured configuration");
    Footprint {
        flash: upkit.flash + 426,
        ram: upkit.ram - 1200,
    }
}

/// Fraction of bootloader code that is platform-independent (Sect. VI-A).
pub const BOOTLOADER_PORTABLE_FRACTION: f64 = 0.91;

/// Average fraction of agent code that is platform-specific (Sect. VI-A).
pub const AGENT_PLATFORM_SPECIFIC_FRACTION: f64 = 0.235;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_bootloader_footprints_match_paper() {
        // Table I of the paper, byte-exact.
        let expected = [
            (Os::Zephyr, CryptoLib::TinyDtls, 13040, 8180),
            (Os::Zephyr, CryptoLib::TinyCrypt, 14151, 8180),
            (Os::Riot, CryptoLib::TinyDtls, 15420, 6512),
            (Os::Riot, CryptoLib::TinyCrypt, 16552, 6512),
            (Os::Contiki, CryptoLib::TinyDtls, 15454, 6637),
            (Os::Contiki, CryptoLib::TinyCrypt, 16546, 6637),
            (Os::Contiki, CryptoLib::CryptoAuthLib, 14078, 6553),
        ];
        for (os, lib, flash, ram) in expected {
            let fp = upkit_bootloader(os, lib);
            assert_eq!(fp.flash, flash, "{} + {} flash", os.name(), lib.name());
            assert_eq!(fp.ram, ram, "{} + {} RAM", os.name(), lib.name());
        }
    }

    #[test]
    fn table2_agent_footprints_match_paper() {
        let expected = [
            (Os::Zephyr, Approach::Pull, 218_472, 75_204),
            (Os::Riot, Approach::Pull, 95_780, 31_244),
            (Os::Contiki, Approach::Pull, 79_445, 19_934),
            (Os::Zephyr, Approach::Push, 81_918, 21_856),
        ];
        for (os, approach, flash, ram) in expected {
            let fp = upkit_agent(os, approach, AgentOptions::default()).unwrap();
            assert_eq!(fp.flash, flash, "{} {:?} flash", os.name(), approach);
            assert_eq!(fp.ram, ram, "{} {:?} RAM", os.name(), approach);
        }
    }

    #[test]
    fn unbuilt_configurations_return_none() {
        assert!(upkit_agent(Os::Contiki, Approach::Push, AgentOptions::default()).is_none());
        assert!(upkit_agent(Os::Riot, Approach::Push, AgentOptions::default()).is_none());
    }

    #[test]
    fn fig7a_mcuboot_deltas() {
        let upkit = upkit_bootloader(Os::Zephyr, CryptoLib::TinyCrypt);
        let mcuboot = mcuboot_bootloader();
        assert_eq!(mcuboot.flash - upkit.flash, 1600);
        assert_eq!(mcuboot.ram - upkit.ram, 716);
    }

    #[test]
    fn fig7b_lwm2m_deltas() {
        let upkit = upkit_agent(Os::Zephyr, Approach::Pull, AgentOptions::default()).unwrap();
        let lwm2m = lwm2m_agent();
        assert_eq!(lwm2m.flash - upkit.flash, 4800);
        assert_eq!(lwm2m.ram - upkit.ram, 2400);
    }

    #[test]
    fn fig7c_mcumgr_deltas() {
        let upkit = upkit_agent(Os::Zephyr, Approach::Push, AgentOptions::default()).unwrap();
        let mcumgr = mcumgr_agent();
        assert_eq!(mcumgr.flash - upkit.flash, 426);
        assert_eq!(upkit.ram - mcumgr.ram, 1200);
    }

    #[test]
    fn zephyr_bootloader_is_leanest_in_flash_but_heaviest_in_ram() {
        // Sect. VI-A: "the Zephyr build requiring about 15 % less flash
        // memory", "roughly 20 % more RAM due to its larger run-time stack".
        let z = upkit_bootloader(Os::Zephyr, CryptoLib::TinyDtls);
        let r = upkit_bootloader(Os::Riot, CryptoLib::TinyDtls);
        let c = upkit_bootloader(Os::Contiki, CryptoLib::TinyDtls);
        assert!(z.flash < r.flash && z.flash < c.flash);
        assert!(z.ram > r.ram && z.ram > c.ram);
        let flash_saving = 1.0 - f64::from(z.flash) / f64::from(r.flash.min(c.flash));
        assert!((0.10..0.20).contains(&flash_saving), "{flash_saving:.3}");
        let ram_overhead = f64::from(z.ram) / f64::from(r.ram.max(c.ram)) - 1.0;
        assert!((0.15..0.30).contains(&ram_overhead), "{ram_overhead:.3}");
    }

    #[test]
    fn hsm_saves_about_ten_percent_of_bootloader_flash() {
        // Sect. VI-A: CryptoAuthLib bootloader needs ~10 % less flash than
        // the Contiki + TinyDTLS build.
        let dtls = upkit_bootloader(Os::Contiki, CryptoLib::TinyDtls);
        let hsm = upkit_bootloader(Os::Contiki, CryptoLib::CryptoAuthLib);
        let saving = 1.0 - f64::from(hsm.flash) / f64::from(dtls.flash);
        assert!((0.07..0.12).contains(&saving), "{saving:.3}");
    }

    #[test]
    fn contiki_pull_agent_savings_match_section_vi() {
        // "Contiki uses 64 % and 17 % less flash as well as 73 % and 36 %
        // less RAM than Zephyr and RIOT."
        let c = upkit_agent(Os::Contiki, Approach::Pull, AgentOptions::default()).unwrap();
        let z = upkit_agent(Os::Zephyr, Approach::Pull, AgentOptions::default()).unwrap();
        let r = upkit_agent(Os::Riot, Approach::Pull, AgentOptions::default()).unwrap();
        let vs_zephyr_flash = 1.0 - f64::from(c.flash) / f64::from(z.flash);
        let vs_riot_flash = 1.0 - f64::from(c.flash) / f64::from(r.flash);
        let vs_zephyr_ram = 1.0 - f64::from(c.ram) / f64::from(z.ram);
        let vs_riot_ram = 1.0 - f64::from(c.ram) / f64::from(r.ram);
        assert!(
            (0.60..0.68).contains(&vs_zephyr_flash),
            "{vs_zephyr_flash:.3}"
        );
        assert!((0.14..0.20).contains(&vs_riot_flash), "{vs_riot_flash:.3}");
        assert!((0.70..0.76).contains(&vs_zephyr_ram), "{vs_zephyr_ram:.3}");
        assert!((0.33..0.40).contains(&vs_riot_ram), "{vs_riot_ram:.3}");
    }

    #[test]
    fn push_is_far_smaller_than_pull_on_zephyr() {
        // Table II: BLE-only push (~82 kB / ~21 kB) vs full-IPv6 pull.
        let push = upkit_agent(Os::Zephyr, Approach::Push, AgentOptions::default()).unwrap();
        let pull = upkit_agent(Os::Zephyr, Approach::Pull, AgentOptions::default()).unwrap();
        assert!(push.flash * 2 < pull.flash);
        assert!(push.ram * 3 < pull.ram);
    }

    #[test]
    fn ablation_disabling_differential_saves_pipeline_cost() {
        let with = upkit_agent(
            Os::Contiki,
            Approach::Pull,
            AgentOptions {
                differential: true,
                shared_crypto: true,
            },
        )
        .unwrap();
        let without = upkit_agent(
            Os::Contiki,
            Approach::Pull,
            AgentOptions {
                differential: false,
                shared_crypto: true,
            },
        )
        .unwrap();
        assert_eq!(
            with.flash - without.flash,
            modules::PIPELINE.flash - modules::PIPELINE_NO_DIFF.flash
        );
        assert_eq!(
            with.ram - without.ram,
            modules::PIPELINE.ram - modules::PIPELINE_NO_DIFF.ram
        );
    }

    #[test]
    fn ablation_unshared_crypto_doubles_library_cost() {
        let shared = upkit_agent(
            Os::Zephyr,
            Approach::Push,
            AgentOptions {
                differential: true,
                shared_crypto: true,
            },
        )
        .unwrap();
        let unshared = upkit_agent(
            Os::Zephyr,
            Approach::Push,
            AgentOptions {
                differential: true,
                shared_crypto: false,
            },
        )
        .unwrap();
        assert_eq!(
            unshared.flash - shared.flash,
            modules::CRYPTO_TINYDTLS.flash
        );
    }

    #[test]
    fn residuals_stay_negligible() {
        for os in Os::ALL {
            for lib in CryptoLib::ALL {
                let r = residuals::bootloader_flash(os, lib).unsigned_abs();
                let total = upkit_bootloader(os, lib).flash;
                assert!(
                    f64::from(r) / f64::from(total) < 0.003,
                    "residual {r} too large for {} + {}",
                    os.name(),
                    lib.name()
                );
            }
        }
    }

    #[test]
    fn footprint_arithmetic() {
        let a = Footprint { flash: 10, ram: 1 };
        let b = Footprint { flash: 5, ram: 2 };
        assert_eq!(a + b, Footprint { flash: 15, ram: 3 });
        let total: Footprint = [a, b, b].into_iter().sum();
        assert_eq!(total, Footprint { flash: 20, ram: 5 });
    }
}
