//! Adversarial-input explorer for UpKit's untrusted-byte surfaces.
//!
//! The paper's threat model (Sect. III) grants the attacker full control
//! of the proxy path: a compromised smartphone or gateway can corrupt,
//! truncate, reorder, replay, or fabricate anything it forwards — it only
//! cannot forge signatures. The crash-consistency explorer (`upkit-chaos`)
//! proves the device survives *power*; this crate proves it survives
//! *bytes*. Every input a device ever parses from the outside world is a
//! mutation surface:
//!
//! | Surface | Decoder under attack |
//! |---|---|
//! | [`MutationClass::Suit`] | SUIT/CBOR envelope → `from_suit_envelope` |
//! | [`MutationClass::ManifestWire`] | signed-manifest wire → `SignedManifest::from_bytes` |
//! | [`MutationClass::ComponentTable`] | multi-payload commit record → `SignedMultiManifest::from_bytes` + dual-signature verify |
//! | [`MutationClass::BlockDiff`] | block-diff delta → `blockdiff::patch_with_budget` |
//! | [`MutationClass::StreamDelta`] | bsdiff stream → `StreamPatcher` |
//! | [`MutationClass::FramedDelta`] | framed patch container → `FramedPatcher` |
//! | [`MutationClass::Lzss`] | LZSS stream → `decompress_with_budget` |
//! | [`MutationClass::FrameCorrupt`]..[`MutationClass::FrameDrop`] | one live link frame via [`FrameAdversary`] |
//! | [`MutationClass::DowngradeReplay`] | whole-stream replay of a stale/foreign package |
//! | [`MutationClass::CachePoison`] | one poisoned block in a warm gateway block cache, served to a fan-out of downstream devices |
//!
//! Each case runs the real acceptance path inside a panic-catching,
//! budget-checked harness and asserts the three-part invariant:
//!
//! 1. **Never accept** — the device either installs a byte-identical
//!    valid update or returns a typed rejection; anything else charges
//!    the `forgeries_accepted` counter (pinned to zero in CI).
//! 2. **Never panic** — no mutated input may unwind any decoder or the
//!    agent/pipeline/bootloader path.
//! 3. **Bounded memory** — no decoder output (and, via the hardened
//!    decoders, no pre-allocation) may exceed a budget derived from the
//!    target slot size; budget rejections charge `decode_overruns`.
//!
//! Session-surface cases additionally re-check the never-brick
//! invariant: the device must still `boot_to_fixed_point` afterwards.
//!
//! Exploration fans out across threads with the same shard-merge
//! discipline as the chaos explorer: each case charges a private tracer,
//! merged in case-index order, so reports and trace bytes are identical
//! for any thread count. Violations shrink to the smallest failing
//! mutation index and emit a one-line `adversary_explore --repro`
//! command.

#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use upkit_compress::LzssError;
use upkit_core::agent::{AgentError, AgentPhase, UpdatePlan};
use upkit_core::components::check_record_signatures;
use upkit_core::keys::TrustAnchors;
use upkit_crypto::backend::TinyCryptBackend;
use upkit_delta::blockdiff::{self, BlockDiffError};
use upkit_delta::{FramedDiffOptions, FramedPatcher, PatchError, StreamPatcher};
use upkit_flash::{SimFlash, SlotId};
use upkit_manifest::suit::to_suit_envelope;
use upkit_manifest::{
    DeviceToken, SignedManifest, SignedMultiManifest, Version, COMPONENT_ENTRY_LEN,
    SIGNED_MANIFEST_LEN,
};
use upkit_net::{
    CachedOrigin, CachingProxy, FrameAdversary, FrameTamper, LinkProfile, LossyLink, PullSession,
    PushEndpoints, PushSession, RetryPolicy, SessionEndpoints, SessionStream, StreamResolution,
    Transport,
};
use upkit_sim::failure::{update_world, world_geometry, UpdateWorld, WorldConfig, WorldMode};
use upkit_sim::scenario::DEVICE_ID;
use upkit_sim::FirmwareGenerator;
use upkit_trace::{Counters, CountersSnapshot, Event, MemorySink, TraceRecord, Tracer};

pub use upkit_chaos_labels::{mode_from_label, mode_label};

/// Re-exported scenario-mode labels, shared with the chaos explorer so
/// both reproducer command lines speak the same dialect.
mod upkit_chaos_labels {
    use upkit_sim::failure::WorldMode;

    /// Stable label for a scenario mode, used in reproducer commands.
    #[must_use]
    pub fn mode_label(mode: WorldMode) -> &'static str {
        match mode {
            WorldMode::Ab => "ab",
            WorldMode::StaticSwap { recovery: false } => "static",
            WorldMode::StaticSwap { recovery: true } => "static-recovery",
            WorldMode::Multi { components } => match components {
                2 => "multi-2",
                3 => "multi-3",
                4 => "multi-4",
                5 => "multi-5",
                6 => "multi-6",
                7 => "multi-7",
                8 => "multi-8",
                _ => "multi",
            },
        }
    }

    /// Inverse of [`mode_label`].
    #[must_use]
    pub fn mode_from_label(label: &str) -> Option<WorldMode> {
        if let Some(n) = label.strip_prefix("multi-") {
            let components: u8 = n.parse().ok()?;
            return (2..=8)
                .contains(&components)
                .then_some(WorldMode::Multi { components });
        }
        match label {
            "ab" => Some(WorldMode::Ab),
            "static" => Some(WorldMode::StaticSwap { recovery: false }),
            "static-recovery" => Some(WorldMode::StaticSwap { recovery: true }),
            _ => None,
        }
    }
}

/// The mutation surfaces, in canonical exploration order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MutationClass {
    /// The SUIT/CBOR manifest envelope fed to `from_suit_envelope`.
    Suit,
    /// The fixed-layout signed-manifest wire encoding.
    ManifestWire,
    /// The multi-payload commit record: legacy signed-manifest wire plus
    /// the appended component table, fed to
    /// `SignedMultiManifest::from_bytes` and then the bootloader's
    /// dual-signature record check — the exact path a journaled commit
    /// record travels before any component swap may begin. The targeted
    /// tail mutations cover the component-count bomb, a mismatched
    /// per-component digest, a duplicate slot assignment, and a
    /// truncated table.
    ComponentTable,
    /// A block-diff delta applied with `patch_with_budget`.
    BlockDiff,
    /// A bsdiff stream fed chunkwise to a budgeted [`StreamPatcher`].
    StreamDelta,
    /// A framed patch container fed chunkwise to a budgeted
    /// [`FramedPatcher`] — directory bombs, overlapping windows, and
    /// per-window length lies all live on this surface.
    FramedDelta,
    /// An LZSS stream fed to `decompress_with_budget`.
    Lzss,
    /// One live session frame, one bit flipped.
    FrameCorrupt,
    /// One live session frame delivered after its successor.
    FrameReorder,
    /// One live session frame delivered twice.
    FrameDuplicate,
    /// A forged frame injected before the target frame.
    FrameInject,
    /// One live session frame silently dropped.
    FrameDrop,
    /// The whole resolved stream replaced by a stale-nonce or
    /// wrong-device package the server once legitimately signed.
    DowngradeReplay,
    /// One block of a warm gateway block cache corrupted in place, then
    /// served to every downstream device — the attack a forwarding-path
    /// [`Tamper`](upkit_net::Tamper) cannot model, because the upstream
    /// fetch itself was honest.
    CachePoison,
}

impl MutationClass {
    /// Every surface, in canonical exploration order.
    pub const ALL: [MutationClass; 14] = [
        MutationClass::Suit,
        MutationClass::ManifestWire,
        MutationClass::ComponentTable,
        MutationClass::BlockDiff,
        MutationClass::StreamDelta,
        MutationClass::FramedDelta,
        MutationClass::Lzss,
        MutationClass::FrameCorrupt,
        MutationClass::FrameReorder,
        MutationClass::FrameDuplicate,
        MutationClass::FrameInject,
        MutationClass::FrameDrop,
        MutationClass::DowngradeReplay,
        MutationClass::CachePoison,
    ];

    /// Stable label used in traces, reports, and reproducer commands.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MutationClass::Suit => "suit",
            MutationClass::ManifestWire => "manifest_wire",
            MutationClass::ComponentTable => "component_table",
            MutationClass::BlockDiff => "blockdiff",
            MutationClass::StreamDelta => "stream_delta",
            MutationClass::FramedDelta => "framed_delta",
            MutationClass::Lzss => "lzss",
            MutationClass::FrameCorrupt => "frame_corrupt",
            MutationClass::FrameReorder => "frame_reorder",
            MutationClass::FrameDuplicate => "frame_duplicate",
            MutationClass::FrameInject => "frame_inject",
            MutationClass::FrameDrop => "frame_drop",
            MutationClass::DowngradeReplay => "downgrade_replay",
            MutationClass::CachePoison => "cache_poison",
        }
    }

    /// Inverse of [`MutationClass::label`].
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.label() == label)
    }

    /// Whether this surface attacks a raw decoder (no device world) or a
    /// live session.
    #[must_use]
    pub fn is_decoder_surface(self) -> bool {
        matches!(
            self,
            MutationClass::Suit
                | MutationClass::ManifestWire
                | MutationClass::ComponentTable
                | MutationClass::BlockDiff
                | MutationClass::StreamDelta
                | MutationClass::FramedDelta
                | MutationClass::Lzss
        )
    }
}

/// Parameters of one exploration run.
#[derive(Clone, Copy, Debug)]
pub struct AdversaryConfig {
    /// The update scenario whose inputs are mutated.
    pub scenario: WorldConfig,
    /// Worker threads for the case fan-out (results are identical for
    /// any value ≥ 1).
    pub threads: usize,
    /// Reboot budget for the post-session never-brick check.
    pub max_boots: u32,
    /// Explore at most this many cases *per surface*, evenly strided
    /// across the surface's universe (`None` = every case).
    pub case_limit: Option<usize>,
}

impl AdversaryConfig {
    /// Exhaustive single-scenario exploration with sensible defaults.
    #[must_use]
    pub fn exhaustive(scenario: WorldConfig) -> Self {
        Self {
            scenario,
            threads: 1,
            max_boots: 8,
            case_limit: None,
        }
    }
}

/// Structural mutations appended after the per-byte bit flips of every
/// decoder surface: truncate-to-half, 64-byte 0xFF extension, all-zeros.
pub const STRUCTURAL_MUTATIONS: u64 = 3;

/// Downgrade-replay case universe: stale-nonce and wrong-device streams.
pub const DOWNGRADE_CASES: u64 = 2;

/// Targeted component-table mutations appended after the generic tail of
/// the [`MutationClass::ComponentTable`] surface: component-count bomb
/// (`u16::MAX` declared entries), mismatched per-component digest,
/// duplicate slot assignment, truncated table.
pub const COMPONENT_TABLE_TARGETED: u64 = 4;

/// Components in the commit record the component-table surface mutates.
pub const COMPONENT_TABLE_SET: u8 = 3;

/// Block size of the gateway cache the cache-poison surface warms; one
/// case per block, so every region of the stream gets poisoned once.
pub const CACHE_POISON_BLOCK_SIZE: usize = 256;

/// Downstream devices served from each poisoned cache — every one of
/// them must reject the stream.
pub const CACHE_POISON_DOWNSTREAM: usize = 3;

/// Everything the fault-free scenario establishes once, shared by every
/// case: the honest frame count, the bytes an honest install leaves in
/// the booted slot, the package corpora the decoder surfaces mutate, and
/// the once-signed streams the replay surface substitutes.
#[derive(Clone, Debug)]
pub struct Baseline {
    /// Link frames the honest push session delivers.
    pub frames: u64,
    /// Slot the honest post-install boot lands in.
    pub booted_slot: SlotId,
    /// Full contents of that slot after the honest install — the
    /// byte-identity reference for the never-accept check.
    pub booted_bytes: Vec<u8>,
    /// The honest stream a caching gateway fetches and caches — the
    /// corpus the cache-poison surface corrupts block by block.
    pub honest_stream: SessionStream,
    /// The stream the server serves for a stale (already-used) nonce.
    pub stale_stream: SessionStream,
    /// The stream the server serves for a different device id.
    pub wrong_device_stream: SessionStream,
    /// SUIT/CBOR envelope of the honest manifest.
    pub suit_bytes: Vec<u8>,
    /// Wire encoding of the honest signed manifest.
    pub manifest_wire: Vec<u8>,
    /// Wire encoding of an honest multi-payload commit record
    /// ([`COMPONENT_TABLE_SET`] components) signed by the same-seed
    /// vendor and server — the corpus the component-table surface
    /// mutates.
    pub multi_record_wire: Vec<u8>,
    /// Trust anchors the commit-record check verifies against.
    pub multi_anchors: TrustAnchors,
    /// Valid block-diff delta v1 → v2.
    pub blockdiff_delta: Vec<u8>,
    /// Valid bsdiff stream v1 → v2.
    pub stream_delta: Vec<u8>,
    /// Valid framed patch container v1 → v2, windowed small enough that
    /// the directory holds several entries for mutations to land in.
    pub framed_delta: Vec<u8>,
    /// Valid LZSS compression of the v2 firmware.
    pub lzss_stream: Vec<u8>,
    /// The v1 image the delta surfaces patch against.
    pub old_firmware: Vec<u8>,
    /// Decode budget derived from the scenario slot size: no decoder may
    /// produce (or pre-allocate) more than fits in the target slot.
    pub budget: u64,
}

/// The freshness nonce every run of `scenario` uses — baseline and cases
/// must agree or the honest manifest itself would be stale.
#[must_use]
pub fn scenario_nonce(scenario: &WorldConfig) -> u32 {
    scenario.seed as u32 | 1
}

fn prepared_stream(
    server: &upkit_core::generation::UpdateServer,
    token: &DeviceToken,
) -> SessionStream {
    let prepared = server
        .prepare_update(token)
        .expect("v2 is published, so the server always has an update");
    let bytes = prepared.image.to_bytes();
    let manifest_len = SIGNED_MANIFEST_LEN.min(bytes.len());
    SessionStream {
        manifest: bytes[..manifest_len].to_vec(),
        payload: bytes[manifest_len..].to_vec(),
    }
}

/// Runs the scenario once, honestly (through a [`FrameAdversary`] with
/// [`FrameTamper::None`], so the frame numbering matches what every
/// mutated case sees), and captures everything in [`Baseline`].
#[must_use]
pub fn record_baseline(scenario: &WorldConfig) -> Baseline {
    let nonce = scenario_nonce(scenario);
    let mut world = update_world(scenario, Box::new(SimFlash::new(world_geometry(scenario))));

    let link = LinkProfile::ble_gatt();
    let mut phone = Smartphone::new();
    let mut session = PushSession::new(LossyLink::reliable(link), RetryPolicy::for_link(&link), 0);
    let (outcome, frames) = {
        let endpoints = PushEndpoints::new(
            &world.server,
            &mut phone,
            &mut world.agent,
            &mut world.layout,
            world.plan.clone(),
            nonce,
        );
        let mut adversary = FrameAdversary::new(endpoints, FrameTamper::None);
        let report = session.run_to_completion(&mut adversary);
        (report.outcome, adversary.frames_seen())
    };
    assert!(
        outcome.is_complete(),
        "the honest baseline run must complete, got {outcome:?}"
    );

    let report = world
        .reboot_to_fixed_point(8)
        .expect("the honest install must boot");
    let booted_slot = report.outcome.booted_slot;
    let spec = world.layout.slot(booted_slot).expect("booted slot exists");
    let mut booted_bytes = vec![0u8; spec.size as usize];
    world
        .layout
        .read_slot(booted_slot, 0, &mut booted_bytes)
        .expect("booted slot is readable");

    // Packages the server once legitimately signed, but for a different
    // freshness nonce / device — exactly what a compromised proxy can
    // hold back and replay later.
    let honest_token = DeviceToken {
        device_id: DEVICE_ID,
        nonce,
        current_version: Version(1),
    };
    let honest = prepared_stream(&world.server, &honest_token);
    let stale_stream = prepared_stream(
        &world.server,
        &DeviceToken {
            nonce: nonce ^ 0x5A5A_5A5A,
            ..honest_token
        },
    );
    let wrong_device_stream = prepared_stream(
        &world.server,
        &DeviceToken {
            device_id: DEVICE_ID ^ 1,
            ..honest_token
        },
    );

    let signed =
        SignedManifest::from_bytes(&honest.manifest).expect("the honest manifest region decodes");
    let suit_bytes = to_suit_envelope(&signed.manifest);

    let old_firmware = FirmwareGenerator::new(scenario.seed).base(scenario.firmware_size);
    let v2 = world.firmware_v2.clone();

    // A same-seed multi-component world provisions a fully signed commit
    // record during setup; its wire bytes are the component-table corpus,
    // and its anchors are what the record check verifies mutations
    // against — the exact pair the transactional bootloader uses.
    let multi_scenario = WorldConfig {
        mode: WorldMode::Multi {
            components: COMPONENT_TABLE_SET,
        },
        ..*scenario
    };
    let multi_world = update_world(
        &multi_scenario,
        Box::new(SimFlash::new(world_geometry(&multi_scenario))),
    );
    let multi = multi_world
        .multi
        .as_ref()
        .expect("a multi world always provisions a staged set");

    Baseline {
        frames,
        booted_slot,
        booted_bytes,
        honest_stream: honest.clone(),
        stale_stream,
        wrong_device_stream,
        suit_bytes,
        manifest_wire: honest.manifest,
        multi_record_wire: multi.record.to_bytes(),
        multi_anchors: multi_world.anchors,
        blockdiff_delta: blockdiff::diff(&old_firmware, &v2),
        stream_delta: upkit_delta::diff(&old_firmware, &v2),
        framed_delta: upkit_delta::framed_diff(
            &old_firmware,
            &v2,
            // A quarter-image window yields a multi-entry directory, so
            // bit flips hit offsets, lengths, and compression tags alike.
            &FramedDiffOptions::default().with_window_len((v2.len() / 4).max(1)),
        ),
        lzss_stream: upkit_compress::compress(&v2, upkit_compress::Params::default()),
        old_firmware,
        budget: u64::from(scenario.slot_size),
    }
}

/// Size of a surface's mutation universe under `baseline`.
#[must_use]
pub fn universe(surface: MutationClass, baseline: &Baseline) -> u64 {
    let corpus = |len: usize| len as u64 + STRUCTURAL_MUTATIONS;
    match surface {
        MutationClass::Suit => corpus(baseline.suit_bytes.len()),
        MutationClass::ManifestWire => corpus(baseline.manifest_wire.len()),
        MutationClass::ComponentTable => {
            corpus(baseline.multi_record_wire.len()) + COMPONENT_TABLE_TARGETED
        }
        MutationClass::BlockDiff => corpus(baseline.blockdiff_delta.len()),
        MutationClass::StreamDelta => corpus(baseline.stream_delta.len()),
        MutationClass::FramedDelta => corpus(baseline.framed_delta.len()),
        MutationClass::Lzss => corpus(baseline.lzss_stream.len()),
        MutationClass::FrameCorrupt
        | MutationClass::FrameReorder
        | MutationClass::FrameDuplicate
        | MutationClass::FrameInject
        | MutationClass::FrameDrop => baseline.frames,
        MutationClass::DowngradeReplay => DOWNGRADE_CASES,
        MutationClass::CachePoison => {
            u64::from(CachedOrigin::new(&baseline.honest_stream).blocks(CACHE_POISON_BLOCK_SIZE))
        }
    }
}

/// Applies mutation `index` of a decoder surface's universe to `corpus`:
/// indices below the corpus length flip one (index-derived) bit of that
/// byte; the [`STRUCTURAL_MUTATIONS`] tail indices truncate to half,
/// append 64 `0xFF` bytes, and zero the whole input.
#[must_use]
pub fn mutate_bytes(corpus: &[u8], index: u64) -> Vec<u8> {
    let len = corpus.len() as u64;
    let mut out = corpus.to_vec();
    if index < len {
        // Vary the bit position across strided indices so a limited run
        // still samples header bits, length bits, and signature bits.
        let bit = (index.wrapping_mul(7) % 8) as u8;
        out[index as usize] ^= 1 << bit;
    } else if index == len {
        out.truncate(corpus.len() / 2);
    } else if index == len + 1 {
        out.extend(std::iter::repeat_n(0xFF, 64));
    } else {
        out.iter_mut().for_each(|b| *b = 0);
    }
    out
}

/// Applies mutation `index` of the component-table universe to a signed
/// multi-manifest wire encoding: the generic [`mutate_bytes`] prefix
/// (bit flips plus structural tail), then the
/// [`COMPONENT_TABLE_TARGETED`] attacks on the table that starts at
/// [`SIGNED_MANIFEST_LEN`] — count bomb, mismatched per-component
/// digest, duplicate slot assignment, truncated table.
#[must_use]
pub fn mutate_component_table(corpus: &[u8], index: u64) -> Vec<u8> {
    let generic = corpus.len() as u64 + STRUCTURAL_MUTATIONS;
    if index < generic {
        return mutate_bytes(corpus, index);
    }
    let mut out = corpus.to_vec();
    let count_at = SIGNED_MANIFEST_LEN + 4;
    let entries_at = SIGNED_MANIFEST_LEN + 6;
    match index - generic {
        // Component-count bomb: claim 65535 entries behind 3 of backing.
        0 => out[count_at..count_at + 2].copy_from_slice(&u16::MAX.to_le_bytes()),
        // First component's digest no longer matches anything.
        1 => out[entries_at + 10] ^= 0xFF,
        // Second component claims the first component's slot.
        2 => {
            out[entries_at + 2 * COMPONENT_ENTRY_LEN - 1] =
                out[entries_at + COMPONENT_ENTRY_LEN - 1]
        }
        // Table cut mid-way through the second entry.
        _ => out.truncate(entries_at + COMPONENT_ENTRY_LEN + COMPONENT_ENTRY_LEN / 2),
    }
    out
}

/// The frame-level tamper realising `(surface, index)`.
///
/// Returns `None` for decoder surfaces (which never touch a session).
#[must_use]
pub fn frame_tamper(
    surface: MutationClass,
    index: u64,
    baseline: &Baseline,
) -> Option<FrameTamper> {
    match surface {
        MutationClass::FrameCorrupt => Some(FrameTamper::Corrupt {
            frame: index,
            // Index-derived position; the adversary wraps it modulo the
            // frame's bit length, so every index lands somewhere.
            bit: (index as u32).wrapping_mul(13).wrapping_add(1),
        }),
        MutationClass::FrameReorder => Some(FrameTamper::Reorder { frame: index }),
        MutationClass::FrameDuplicate => Some(FrameTamper::Duplicate { frame: index }),
        MutationClass::FrameInject => Some(FrameTamper::Inject {
            frame: index,
            fill: 0xA5,
        }),
        MutationClass::FrameDrop => Some(FrameTamper::Drop { frame: index }),
        MutationClass::DowngradeReplay => Some(FrameTamper::ReplaceStream(if index == 0 {
            baseline.stale_stream.clone()
        } else {
            baseline.wrong_device_stream.clone()
        })),
        _ => None,
    }
}

/// Outcome of one `(surface, index)` case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CaseResult {
    /// The mutated surface.
    pub surface: MutationClass,
    /// Index into the surface's mutation universe.
    pub index: u64,
    /// Stable label of what the acceptance path did: a session outcome
    /// label, or `decoded` / `typed_error` / `budget_rejected` /
    /// `panicked` for decoder surfaces.
    pub outcome: String,
    /// Whether the case unwound a panic (always a violation).
    pub panicked: bool,
    /// `None` when the three-part invariant held; otherwise how it broke.
    pub violation: Option<String>,
}

impl CaseResult {
    /// Whether the invariant held for this case.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }
}

use upkit_net::Smartphone;

fn run_decoder_case(
    baseline: &Baseline,
    surface: MutationClass,
    index: u64,
    tracer: &Tracer,
) -> (String, bool, Option<String>) {
    let corpus = match surface {
        MutationClass::Suit => &baseline.suit_bytes,
        MutationClass::ManifestWire => &baseline.manifest_wire,
        MutationClass::ComponentTable => &baseline.multi_record_wire,
        MutationClass::BlockDiff => &baseline.blockdiff_delta,
        MutationClass::StreamDelta => &baseline.stream_delta,
        MutationClass::FramedDelta => &baseline.framed_delta,
        MutationClass::Lzss => &baseline.lzss_stream,
        _ => unreachable!("decoder dispatch on a session surface"),
    };
    let mutated = if surface == MutationClass::ComponentTable {
        mutate_component_table(corpus, index)
    } else {
        mutate_bytes(corpus, index)
    };
    let budget = baseline.budget;

    // (outcome label, produced output length, budget-rejected?)
    let decoded = catch_unwind(AssertUnwindSafe(|| match surface {
        MutationClass::Suit => match upkit_manifest::suit::from_suit_envelope(&mutated) {
            Ok(_) => ("decoded", 0u64, false),
            Err(_) => ("typed_error", 0, false),
        },
        MutationClass::ManifestWire => match SignedManifest::from_bytes(&mutated) {
            Ok(_) => ("decoded", 0, false),
            Err(_) => ("typed_error", 0, false),
        },
        // The commit-record acceptance path: structural decode (which
        // bounds the count before allocating and rejects duplicate
        // slots), then the same dual-signature check the transactional
        // bootloader runs before any component swap. Only a record that
        // passes *both* counts as decoded — and since every mutation
        // changes at least one signed byte, any such acceptance is a
        // forgery.
        MutationClass::ComponentTable => match SignedMultiManifest::from_bytes(&mutated) {
            Ok(record) => {
                if check_record_signatures(&TinyCryptBackend, &baseline.multi_anchors, &record)
                    .is_ok()
                {
                    ("decoded", 0, false)
                } else {
                    ("typed_error", 0, false)
                }
            }
            Err(_) => ("typed_error", 0, false),
        },
        MutationClass::BlockDiff => {
            match blockdiff::patch_with_budget(&baseline.old_firmware, &mutated, budget as usize) {
                Ok(out) => ("decoded", out.len() as u64, false),
                Err(BlockDiffError::BudgetExceeded) => ("budget_rejected", 0, true),
                Err(_) => ("typed_error", 0, false),
            }
        }
        MutationClass::StreamDelta => {
            let mut patcher = StreamPatcher::with_budget(baseline.old_firmware.as_slice(), budget);
            let mut out = Vec::new();
            let mut verdict = ("decoded", 0u64, false);
            for chunk in mutated.chunks(256) {
                match patcher.push(chunk, &mut out) {
                    Ok(()) => {}
                    Err(PatchError::BudgetExceeded) => {
                        verdict = ("budget_rejected", 0, true);
                        break;
                    }
                    Err(_) => {
                        verdict = ("typed_error", 0, false);
                        break;
                    }
                }
            }
            if verdict.0 == "decoded" {
                verdict.1 = out.len() as u64;
            }
            verdict
        }
        MutationClass::FramedDelta => {
            let mut patcher = FramedPatcher::with_budget(baseline.old_firmware.as_slice(), budget);
            let mut out = Vec::new();
            let mut verdict = ("decoded", 0u64, false);
            for chunk in mutated.chunks(256) {
                match patcher.push(chunk, &mut out) {
                    Ok(()) => {}
                    Err(e) if e.is_budget_rejection() => {
                        verdict = ("budget_rejected", 0, true);
                        break;
                    }
                    Err(_) => {
                        verdict = ("typed_error", 0, false);
                        break;
                    }
                }
            }
            if verdict.0 == "decoded" {
                if let Err(e) = patcher.finish() {
                    verdict.0 = if e.is_budget_rejection() {
                        verdict.2 = true;
                        "budget_rejected"
                    } else {
                        "typed_error"
                    };
                }
            }
            if verdict.0 == "decoded" {
                verdict.1 = out.len() as u64;
            }
            verdict
        }
        MutationClass::Lzss => match upkit_compress::decompress_with_budget(&mutated, budget) {
            Ok(out) => ("decoded", out.len() as u64, false),
            Err(LzssError::BudgetExceeded) => ("budget_rejected", 0, true),
            Err(_) => ("typed_error", 0, false),
        },
        _ => unreachable!("decoder dispatch on a session surface"),
    }));

    match decoded {
        Ok((label, produced, budget_rejected)) => {
            if budget_rejected {
                Counters::add(&tracer.counters().decode_overruns, 1);
            }
            let violation = if surface == MutationClass::ComponentTable && label == "decoded" {
                Counters::add(&tracer.counters().forgeries_accepted, 1);
                Some(
                    "mutated commit record decoded and passed dual-signature verification"
                        .to_string(),
                )
            } else {
                (produced > budget).then(|| {
                    format!(
                        "decoder produced {produced} bytes, beyond the {budget}-byte slot budget"
                    )
                })
            };
            (label.to_string(), false, violation)
        }
        Err(_) => (
            "panicked".to_string(),
            true,
            Some(format!("{} decoder panicked", surface.label())),
        ),
    }
}

/// Post-session never-brick / never-accept check shared by every session
/// surface (frame tampers, stream replay, cache poison): the device must
/// still boot a dual-signature-valid image, never an older one, and if
/// it kept the update it must be byte-identical to the vendor's. Returns
/// the violation (if any) and whether a forgery was accepted.
fn post_session_invariant(
    world: &mut UpdateWorld,
    baseline: &Baseline,
    completed: bool,
    max_boots: u32,
) -> (Option<String>, bool) {
    let base = world.base_version;
    match world.reboot_to_fixed_point(max_boots) {
        Ok(report) => {
            let booted = report.outcome.booted_slot;
            let version = report.outcome.version;
            if !world.slot_verifies(booted) {
                return (
                    Some(format!(
                        "booted slot {booted:?} does not hold a dual-signature-valid image"
                    )),
                    false,
                );
            }
            if version < base {
                return (
                    Some(format!(
                        "booted version {version} is older than the pre-update version {base}"
                    )),
                    false,
                );
            }
            if version > base {
                let spec = world.layout.slot(booted).expect("booted slot exists");
                let mut bytes = vec![0u8; spec.size as usize];
                world
                    .layout
                    .read_slot(booted, 0, &mut bytes)
                    .expect("booted slot is readable");
                if booted != baseline.booted_slot || bytes != baseline.booted_bytes {
                    return (
                        Some(
                            "device kept an update that is not byte-identical to the \
                             vendor image"
                                .to_string(),
                        ),
                        true,
                    );
                }
            } else if completed {
                return (
                    Some("session completed but the device still boots the old version".into()),
                    false,
                );
            }
            (None, false)
        }
        Err(err) => (Some(format!("device bricked: {err}")), false),
    }
}

/// [`SessionEndpoints`] for a device pulling through a caching gateway:
/// a real [`UpdateAgent`](upkit_core::agent::UpdateAgent) served from the
/// proxy's block cache instead of straight from the server.
struct CachedPullEndpoints<'a> {
    proxy: &'a mut CachingProxy,
    origin: &'a CachedOrigin,
    world: &'a mut UpdateWorld,
    plan: Option<UpdatePlan>,
    nonce: u32,
}

impl SessionEndpoints for CachedPullEndpoints<'_> {
    fn request_token(&mut self) -> Result<DeviceToken, AgentError> {
        let plan = self.plan.take().ok_or(AgentError::WrongState(
            upkit_core::agent::AgentState::Waiting,
        ))?;
        self.world
            .agent
            .request_device_token(&mut self.world.layout, plan, self.nonce)
    }

    fn resolve_stream(&mut self, _token: &DeviceToken) -> StreamResolution {
        // Well after the warm-up fetches landed: every block is a cache
        // hit, so the device is served *only* poisoned-cache bytes.
        self.proxy.resolve(self.origin, 1 << 40)
    }

    fn deliver(&mut self, chunk: &[u8]) -> Result<AgentPhase, AgentError> {
        self.world.agent.push_data(&mut self.world.layout, chunk)
    }
}

/// One cache-poison case: warm a gateway cache with one honest serve,
/// corrupt block `index` in place, then serve
/// [`CACHE_POISON_DOWNSTREAM`] devices from the poisoned cache. Every
/// one of them must reject the stream and keep booting its old image.
fn run_cache_case(
    scenario: &WorldConfig,
    baseline: &Baseline,
    index: u64,
    max_boots: u32,
    tracer: &Tracer,
) -> (String, bool, Option<String>) {
    let nonce = scenario_nonce(scenario);
    let origin = CachedOrigin::new(&baseline.honest_stream);
    let blocks = origin.blocks(CACHE_POISON_BLOCK_SIZE) as usize;
    let mut proxy = CachingProxy::new(
        0xCA4E,
        CACHE_POISON_BLOCK_SIZE,
        blocks,
        LinkProfile::wifi_backhaul(),
    );
    proxy.set_tracer(tracer.clone());
    // Warm the cache honestly, then poison one block in place. The
    // upstream fetch was legitimate — only the cached copy lies.
    let _ = proxy.resolve(&origin, 0);
    let bit = (index.wrapping_mul(11) % 8) as u8;
    let poisoned = proxy.poison_block(origin.digest(), index as u32, |bytes| {
        let target = (index as usize).wrapping_mul(31) % bytes.len().max(1);
        if let Some(byte) = bytes.get_mut(target) {
            *byte ^= 1 << bit;
        }
    });
    if !poisoned {
        return (
            "block_not_cached".to_string(),
            false,
            Some(format!("cache block {index} was never warmed")),
        );
    }

    let mut label = String::new();
    let mut panicked = false;
    let mut violation: Option<String> = None;
    for device in 0..CACHE_POISON_DOWNSTREAM {
        let mut world = update_world(scenario, Box::new(SimFlash::new(world_geometry(scenario))));
        world.layout.set_tracer(tracer.clone());
        let session_result = {
            let link = LinkProfile::ieee802154_6lowpan();
            let mut session = PullSession::new(
                LossyLink::reliable(link),
                RetryPolicy::for_link(&link),
                device as u64,
            );
            session.set_tracer(tracer.clone());
            let plan = world.plan.clone();
            catch_unwind(AssertUnwindSafe(|| {
                let mut endpoints = CachedPullEndpoints {
                    proxy: &mut proxy,
                    origin: &origin,
                    world: &mut world,
                    plan: Some(plan),
                    nonce,
                };
                session.run_to_completion(&mut endpoints).outcome
            }))
        };
        let (device_label, completed, device_panicked) = match &session_result {
            Ok(outcome) => (outcome.label().to_string(), outcome.is_complete(), false),
            Err(_) => ("panicked".to_string(), false, true),
        };
        panicked |= device_panicked;
        label = device_label;

        let checked = catch_unwind(AssertUnwindSafe(|| {
            post_session_invariant(&mut world, baseline, completed, max_boots)
        }));
        let (device_violation, forged) = match checked {
            Ok(v) => v,
            Err(_) => {
                panicked = true;
                (Some("post-session boot check panicked".to_string()), false)
            }
        };
        if forged {
            Counters::add(&tracer.counters().forgeries_accepted, 1);
        }
        if violation.is_none() {
            violation = device_violation
                .map(|v| format!("downstream device {device}: {v}"))
                .or_else(|| {
                    device_panicked.then(|| format!("cache_poison device {device} panicked"))
                });
        }
    }
    (label, panicked, violation)
}

fn run_session_case(
    scenario: &WorldConfig,
    baseline: &Baseline,
    surface: MutationClass,
    index: u64,
    max_boots: u32,
    tracer: &Tracer,
) -> (String, bool, Option<String>) {
    let tamper =
        frame_tamper(surface, index, baseline).expect("session dispatch on a session surface");
    let nonce = scenario_nonce(scenario);
    let mut world = update_world(scenario, Box::new(SimFlash::new(world_geometry(scenario))));
    world.layout.set_tracer(tracer.clone());

    let session_result = catch_unwind(AssertUnwindSafe(|| {
        let link = LinkProfile::ble_gatt();
        let mut phone = Smartphone::new();
        let mut session =
            PushSession::new(LossyLink::reliable(link), RetryPolicy::for_link(&link), 0);
        session.set_tracer(tracer.clone());
        let endpoints = PushEndpoints::new(
            &world.server,
            &mut phone,
            &mut world.agent,
            &mut world.layout,
            world.plan.clone(),
            nonce,
        );
        let mut adversary = FrameAdversary::new(endpoints, tamper);
        session.run_to_completion(&mut adversary).outcome
    }));

    let (label, completed, mut panicked) = match &session_result {
        Ok(outcome) => (outcome.label().to_string(), outcome.is_complete(), false),
        Err(_) => ("panicked".to_string(), false, true),
    };

    // Whatever the session did, the device must still boot a valid image
    // — and if it *kept* the update, the update must be byte-identical to
    // the vendor's (never-accept). The check runs under its own
    // catch_unwind so a panicking bootloader is a report line, not a
    // harness crash.
    let checked = catch_unwind(AssertUnwindSafe(|| {
        post_session_invariant(&mut world, baseline, completed, max_boots)
    }));

    let (violation, forged) = match checked {
        Ok(v) => v,
        Err(_) => {
            panicked = true;
            (Some("post-session boot check panicked".to_string()), false)
        }
    };
    if forged {
        Counters::add(&tracer.counters().forgeries_accepted, 1);
    }
    let violation = violation
        .or_else(|| panicked.then(|| format!("{} session path panicked", surface.label())));
    (label, panicked, violation)
}

/// Runs one `(surface, index)` case against `scenario`: mutate, drive the
/// acceptance path under `catch_unwind`, check the three-part invariant.
/// Charges and events go to `tracer`.
pub fn run_case(
    scenario: &WorldConfig,
    baseline: &Baseline,
    surface: MutationClass,
    index: u64,
    max_boots: u32,
    tracer: &Tracer,
) -> CaseResult {
    tracer.emit(|| Event::MutationInjected {
        case: index,
        surface: surface.label(),
    });

    let (outcome, panicked, violation) = if surface.is_decoder_surface() {
        run_decoder_case(baseline, surface, index, tracer)
    } else if surface == MutationClass::CachePoison {
        run_cache_case(scenario, baseline, index, max_boots, tracer)
    } else {
        run_session_case(scenario, baseline, surface, index, max_boots, tracer)
    };

    let ok = violation.is_none();
    tracer.emit(|| Event::MutationChecked {
        case: index,
        surface: surface.label(),
        panicked,
        ok,
    });

    CaseResult {
        surface,
        index,
        outcome,
        panicked,
        violation,
    }
}

/// The case indices to explore for a surface universe of `total` cases:
/// all of them, or `limit` evenly strided (always including index 0).
#[must_use]
pub fn select_cases(total: u64, limit: Option<usize>) -> Vec<u64> {
    match limit {
        Some(limit) if (limit as u64) < total => (0..limit as u64)
            .map(|i| i * total / limit as u64)
            .collect(),
        _ => (0..total).collect(),
    }
}

/// Everything one exploration run learned.
#[derive(Debug)]
pub struct AdversaryReport {
    /// The scenario whose inputs were mutated.
    pub scenario: WorldConfig,
    /// Full universe size per surface.
    pub universes: Vec<(MutationClass, u64)>,
    /// The `(surface, index)` cases actually explored.
    pub explored: Vec<(MutationClass, u64)>,
    /// One result per explored case, in canonical order.
    pub cases: Vec<CaseResult>,
}

impl AdversaryReport {
    /// The cases that violated the invariant.
    #[must_use]
    pub fn violations(&self) -> Vec<&CaseResult> {
        self.cases.iter().filter(|c| !c.ok()).collect()
    }

    /// The cases that panicked.
    #[must_use]
    pub fn panics(&self) -> usize {
        self.cases.iter().filter(|c| c.panicked).count()
    }

    /// The violation at the smallest `(surface, index)` pair, if any.
    #[must_use]
    pub fn minimal_violation(&self) -> Option<&CaseResult> {
        self.cases
            .iter()
            .filter(|c| !c.ok())
            .min_by_key(|c| (c.surface, c.index))
    }

    /// Whether the case set equals the selected cross product exactly —
    /// nothing skipped, nothing duplicated.
    #[must_use]
    pub fn full_coverage(&self) -> bool {
        use std::collections::HashSet;
        let expected: HashSet<(MutationClass, u64)> = self.explored.iter().copied().collect();
        let actual: HashSet<(MutationClass, u64)> =
            self.cases.iter().map(|c| (c.surface, c.index)).collect();
        actual == expected && self.cases.len() == expected.len()
    }
}

/// [`explore_traced`] with tracing disabled.
#[must_use]
pub fn explore(config: &AdversaryConfig) -> AdversaryReport {
    explore_traced(config, &Tracer::disabled())
}

/// Records the scenario baseline, then explores every selected
/// `(surface, index)` case across `config.threads` workers.
///
/// Determinism: every case is a pure function of `(scenario, baseline,
/// surface, index)`, the baseline is a pure function of the scenario,
/// each worker charges a case-private tracer, and the private buffers are
/// merged into `tracer` in case-index order — so the report, counter
/// totals, and trace record sequence are byte-identical for any thread
/// count.
#[must_use]
pub fn explore_traced(config: &AdversaryConfig, tracer: &Tracer) -> AdversaryReport {
    let baseline = record_baseline(&config.scenario);
    let universes: Vec<(MutationClass, u64)> = MutationClass::ALL
        .into_iter()
        .map(|s| (s, universe(s, &baseline)))
        .collect();
    let cases: Vec<(MutationClass, u64)> = universes
        .iter()
        .flat_map(|&(surface, total)| {
            select_cases(total, config.case_limit)
                .into_iter()
                .map(move |i| (surface, i))
        })
        .collect();

    type Slot = Mutex<Option<(CaseResult, CountersSnapshot, Vec<TraceRecord>)>>;
    let slots: Vec<Slot> = (0..cases.len()).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let threads = config.threads.max(1);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&(surface, case)) = cases.get(index) else {
                    break;
                };
                let sink = Arc::new(MemorySink::new());
                let case_tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
                let result = run_case(
                    &config.scenario,
                    &baseline,
                    surface,
                    case,
                    config.max_boots,
                    &case_tracer,
                );
                let snapshot = case_tracer.counters().snapshot();
                *slots[index].lock().expect("result slot poisoned") =
                    Some((result, snapshot, sink.drain()));
            });
        }
    })
    .expect("adversary workers do not panic");

    // Merge in case-index order: the parent trace is independent of
    // which worker ran which case.
    let mut results = Vec::with_capacity(cases.len());
    for slot in &slots {
        let (result, snapshot, records) = slot
            .lock()
            .expect("result slot poisoned")
            .take()
            .expect("every case ran");
        tracer.absorb(&snapshot, &records);
        results.push(result);
    }

    AdversaryReport {
        scenario: config.scenario,
        universes,
        explored: cases,
        cases: results,
    }
}

/// A violation reduced to its smallest failing mutation, plus the
/// one-line command that reproduces it.
#[derive(Debug)]
pub struct Shrunk {
    /// The minimal failing case.
    pub case: CaseResult,
    /// A `cargo run` command reproducing exactly this case.
    pub command: String,
}

/// The reproducer command for one `(scenario, surface, index)` case.
#[must_use]
pub fn repro_command(scenario: &WorldConfig, surface: MutationClass, index: u64) -> String {
    format!(
        "cargo run --release -p upkit-bench --bin adversary_explore -- --repro {} {} {} {} {} {}",
        mode_label(scenario.mode),
        scenario.seed,
        scenario.firmware_size,
        scenario.slot_size,
        surface.label(),
        index
    )
}

/// Shrinks the report's minimal violation to the smallest mutation index
/// that still fails on the same surface, re-running only indices the
/// (possibly strided) exploration skipped. Returns `None` when the report
/// has no violations.
#[must_use]
pub fn shrink_violation(
    config: &AdversaryConfig,
    baseline: &Baseline,
    report: &AdversaryReport,
) -> Option<Shrunk> {
    let worst = report.minimal_violation()?;
    let passed: std::collections::HashSet<u64> = report
        .cases
        .iter()
        .filter(|c| c.surface == worst.surface && c.ok())
        .map(|c| c.index)
        .collect();
    let tracer = Tracer::disabled();
    for index in 0..worst.index {
        if passed.contains(&index) {
            continue;
        }
        let case = run_case(
            &config.scenario,
            baseline,
            worst.surface,
            index,
            config.max_boots,
            &tracer,
        );
        if !case.ok() {
            let command = repro_command(&config.scenario, case.surface, case.index);
            return Some(Shrunk { case, command });
        }
    }
    let command = repro_command(&config.scenario, worst.surface, worst.index);
    Some(Shrunk {
        case: worst.clone(),
        command,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use upkit_sim::failure::WorldMode;

    #[test]
    fn labels_round_trip() {
        for surface in MutationClass::ALL {
            assert_eq!(MutationClass::from_label(surface.label()), Some(surface));
        }
        assert_eq!(MutationClass::from_label("telepathy"), None);
        for mode in [
            WorldMode::Ab,
            WorldMode::StaticSwap { recovery: false },
            WorldMode::StaticSwap { recovery: true },
        ] {
            assert_eq!(mode_from_label(mode_label(mode)), Some(mode));
        }
    }

    #[test]
    fn case_selection_is_total_or_evenly_strided() {
        assert_eq!(select_cases(4, None), vec![0, 1, 2, 3]);
        assert_eq!(select_cases(4, Some(10)), vec![0, 1, 2, 3]);
        assert_eq!(select_cases(100, Some(4)), vec![0, 25, 50, 75]);
    }

    #[test]
    fn byte_mutations_cover_flips_and_structural_cases() {
        let corpus = vec![0u8; 16];
        for index in 0..16u64 {
            let mutated = mutate_bytes(&corpus, index);
            assert_eq!(mutated.len(), 16);
            let differing: Vec<usize> = (0..16).filter(|&i| mutated[i] != corpus[i]).collect();
            assert_eq!(differing, vec![index as usize], "exactly one byte changes");
            assert_eq!(
                (mutated[index as usize] ^ corpus[index as usize]).count_ones(),
                1,
                "exactly one bit of it"
            );
        }
        assert_eq!(mutate_bytes(&corpus, 16).len(), 8, "truncate to half");
        let extended = mutate_bytes(&corpus, 17);
        assert_eq!(extended.len(), 16 + 64, "0xFF extension");
        assert!(extended[16..].iter().all(|&b| b == 0xFF));
        let zeroed = mutate_bytes(&[0xABu8; 16], 18);
        assert!(zeroed.iter().all(|&b| b == 0));
    }

    #[test]
    fn component_table_targeted_mutations_hit_the_table() {
        // 188 bytes of "signed manifest", then a 3-entry table.
        let mut corpus = vec![0x11u8; SIGNED_MANIFEST_LEN];
        corpus.extend_from_slice(b"UKC1");
        corpus.extend_from_slice(&3u16.to_le_bytes());
        for slot in [0u8, 2, 4] {
            let mut entry = vec![0x22u8; COMPONENT_ENTRY_LEN];
            entry[COMPONENT_ENTRY_LEN - 1] = slot;
            corpus.extend_from_slice(&entry);
        }
        let generic = corpus.len() as u64 + STRUCTURAL_MUTATIONS;
        let count_at = SIGNED_MANIFEST_LEN + 4;
        let entries_at = SIGNED_MANIFEST_LEN + 6;

        // Indices below the targeted tail behave like mutate_bytes.
        assert_eq!(mutate_component_table(&corpus, 5), mutate_bytes(&corpus, 5));

        let bombed = mutate_component_table(&corpus, generic);
        assert_eq!(&bombed[count_at..count_at + 2], &u16::MAX.to_le_bytes());
        assert_eq!(bombed.len(), corpus.len(), "the bomb claims, not backs");

        let bad_digest = mutate_component_table(&corpus, generic + 1);
        assert_ne!(bad_digest[entries_at + 10], corpus[entries_at + 10]);

        let dup_slot = mutate_component_table(&corpus, generic + 2);
        assert_eq!(
            dup_slot[entries_at + 2 * COMPONENT_ENTRY_LEN - 1],
            dup_slot[entries_at + COMPONENT_ENTRY_LEN - 1],
            "second entry claims the first entry's slot"
        );

        let truncated = mutate_component_table(&corpus, generic + 3);
        assert!(truncated.len() > SIGNED_MANIFEST_LEN + 6);
        assert!(truncated.len() < entries_at + 2 * COMPONENT_ENTRY_LEN);
    }

    #[test]
    fn frame_tampers_target_the_indexed_frame() {
        let baseline = tiny_baseline();
        assert!(matches!(
            frame_tamper(MutationClass::FrameDrop, 7, &baseline),
            Some(FrameTamper::Drop { frame: 7 })
        ));
        assert!(matches!(
            frame_tamper(MutationClass::FrameInject, 3, &baseline),
            Some(FrameTamper::Inject {
                frame: 3,
                fill: 0xA5
            })
        ));
        assert!(frame_tamper(MutationClass::Lzss, 0, &baseline).is_none());
        match frame_tamper(MutationClass::DowngradeReplay, 0, &baseline) {
            Some(FrameTamper::ReplaceStream(stream)) => {
                assert_eq!(stream, baseline.stale_stream);
            }
            other => panic!("expected the stale stream, got {other:?}"),
        }
    }

    fn tiny_baseline() -> Baseline {
        Baseline {
            frames: 10,
            booted_slot: upkit_flash::standard::SLOT_B,
            booted_bytes: vec![0; 4],
            honest_stream: SessionStream {
                manifest: vec![5; 4],
                payload: vec![6; 8],
            },
            stale_stream: SessionStream {
                manifest: vec![1],
                payload: vec![2],
            },
            wrong_device_stream: SessionStream {
                manifest: vec![3],
                payload: vec![4],
            },
            suit_bytes: vec![0; 8],
            manifest_wire: vec![0; 8],
            multi_record_wire: vec![0; 8],
            multi_anchors: TrustAnchors::hsm(0, 1),
            blockdiff_delta: vec![0; 8],
            stream_delta: vec![0; 8],
            framed_delta: vec![0; 8],
            lzss_stream: vec![0; 8],
            old_firmware: vec![0; 8],
            budget: 4096,
        }
    }

    #[test]
    fn universes_follow_corpus_sizes() {
        let baseline = tiny_baseline();
        assert_eq!(universe(MutationClass::Suit, &baseline), 8 + 3);
        assert_eq!(
            universe(MutationClass::ComponentTable, &baseline),
            8 + 3 + 4
        );
        assert_eq!(universe(MutationClass::FrameCorrupt, &baseline), 10);
        assert_eq!(universe(MutationClass::DowngradeReplay, &baseline), 2);
        // 12 stream bytes in one 256-byte cache block.
        assert_eq!(universe(MutationClass::CachePoison, &baseline), 1);
    }
}
