//! Regression for the arm/disarm power-cut contract.
//!
//! An early revision of [`upkit_flash::FlashDevice`] gave
//! `disarm_power_cut` an empty default body, so a device could implement
//! `arm_power_cut_after` and silently inherit a no-op disarm: the armed
//! cut then survived every simulated reboot and killed the first large
//! write after "recovery". The trait now forces both hooks to be
//! implemented; this test pins the behavioural half of the contract on
//! every implementation — arm, disarm, then a write larger than the
//! armed budget must complete uninterrupted.

use upkit_flash::fault::{FaultFlash, FaultKind, FaultPlan};
use upkit_flash::{FileFlash, FlashDevice, FlashError, FlashGeometry, SimFlash};

fn geometry() -> FlashGeometry {
    FlashGeometry {
        size: 4096 * 4,
        sector_size: 4096,
        read_micros_per_byte: 0,
        write_micros_per_byte: 0,
        erase_micros_per_sector: 0,
    }
}

/// Arms a 4-byte cut, disarms it, then writes 64 bytes: with a sticky
/// disarm the write dies after 4 bytes with `PowerLoss`.
fn assert_disarm_unsticks(device: &mut dyn FlashDevice, name: &str) {
    device.erase_sector(0).unwrap();
    device.arm_power_cut_after(4);
    device.disarm_power_cut();
    device
        .write(0, &[0x00; 64])
        .unwrap_or_else(|e| panic!("{name}: write after disarm must complete: {e}"));
    let mut buf = [0xAAu8; 64];
    device.read(0, &mut buf).unwrap();
    assert_eq!(buf, [0x00; 64], "{name}: every byte landed");
    // Erases consume the budget too; they must also run uninterrupted.
    device.arm_power_cut_after(4);
    device.disarm_power_cut();
    device
        .erase_sector(0)
        .unwrap_or_else(|e| panic!("{name}: erase after disarm must complete: {e}"));
}

#[test]
fn disarm_unsticks_sim_flash() {
    assert_disarm_unsticks(&mut SimFlash::new(geometry()), "SimFlash");
}

#[test]
fn disarm_unsticks_file_flash() {
    let path =
        std::env::temp_dir().join(format!("upkit-power-cut-hooks-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut flash = FileFlash::open(&path, geometry()).unwrap();
    assert_disarm_unsticks(&mut flash, "FileFlash");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn disarm_unsticks_recording_fault_flash() {
    let (mut flash, _log) = FaultFlash::recording(Box::new(SimFlash::new(geometry())));
    assert_disarm_unsticks(&mut flash, "FaultFlash (recording)");
}

#[test]
fn disarm_unsticks_fault_flash_after_its_fault_fired() {
    // The proxy's own cut state must clear on disarm as well: once the
    // planned fault has fired and power returns, the device is healthy.
    let mut flash = FaultFlash::with_fault(
        Box::new(SimFlash::new(geometry())),
        FaultPlan {
            boundary: 0,
            kind: FaultKind::CleanCut,
            recovery_cut: None,
        },
    );
    assert_eq!(flash.erase_sector(0), Err(FlashError::PowerLoss));
    flash.disarm_power_cut();
    assert_disarm_unsticks(&mut flash, "FaultFlash (post-fault)");
}
