//! POSIX-like slot IO: UpKit's *memory interface*.
//!
//! The paper models slot access on the standard POSIX IO functions — open,
//! read, write, close — with flash-specific open modes:
//!
//! * [`OpenMode::ReadOnly`] — reads only.
//! * [`OpenMode::WriteAll`] — erases the whole slot at open, then writes
//!   sequentially (used when the incoming image size is known up front).
//! * [`OpenMode::SequentialRewrite`] — erases each sector lazily the first
//!   time the write cursor enters it (used by the pipeline's writer stage,
//!   which learns the image size only as data streams in).

use crate::layout::{LayoutError, MemoryLayout, SlotId, SlotSpec};

/// How a slot is opened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpenMode {
    /// Only reads are permitted.
    ReadOnly,
    /// The entire slot is erased at open; writes proceed sequentially.
    WriteAll,
    /// Each sector is erased when the write cursor first enters it.
    SequentialRewrite,
}

/// An open slot with a cursor, borrowed from a [`MemoryLayout`].
///
/// # Examples
///
/// ```
/// use upkit_flash::{configuration_a, standard, OpenMode, SimFlash, FlashGeometry};
///
/// let mut layout = configuration_a(
///     Box::new(SimFlash::new(FlashGeometry::internal_nrf52840())),
///     4096 * 4,
/// ).unwrap();
/// let mut slot = layout.open(standard::SLOT_A, OpenMode::WriteAll).unwrap();
/// slot.write(b"firmware image").unwrap();
/// slot.close();
///
/// let mut slot = layout.open(standard::SLOT_A, OpenMode::ReadOnly).unwrap();
/// let mut buf = [0u8; 14];
/// slot.read(&mut buf).unwrap();
/// assert_eq!(&buf, b"firmware image");
/// ```
#[derive(Debug)]
pub struct SlotHandle<'a> {
    layout: &'a mut MemoryLayout,
    spec: SlotSpec,
    mode: OpenMode,
    pos: u32,
    /// Next slot-relative offset that still needs erasing
    /// (`SequentialRewrite` only).
    next_unerased: u32,
    sector_size: u32,
}

impl MemoryLayout {
    /// Opens a slot, applying the mode's erase policy.
    pub fn open(&mut self, id: SlotId, mode: OpenMode) -> Result<SlotHandle<'_>, LayoutError> {
        let spec = self.slot(id)?;
        if mode == OpenMode::WriteAll {
            self.erase_slot(id)?;
        }
        let sector_size = self
            .device_geometry(spec.device)
            .expect("slot spec references a registered device")
            .sector_size;
        Ok(SlotHandle {
            layout: self,
            spec,
            mode,
            pos: 0,
            next_unerased: 0,
            sector_size,
        })
    }
}

impl SlotHandle<'_> {
    /// Current cursor position within the slot.
    #[must_use]
    pub fn position(&self) -> u32 {
        self.pos
    }

    /// Size of the slot in bytes.
    #[must_use]
    pub fn size(&self) -> u32 {
        self.spec.size
    }

    /// Moves the cursor. Seeking is only meaningful for reads; sequential
    /// write modes keep their own erase frontier.
    pub fn seek(&mut self, pos: u32) -> Result<(), LayoutError> {
        if pos > self.spec.size {
            return Err(LayoutError::Flash(crate::device::FlashError::OutOfBounds));
        }
        self.pos = pos;
        Ok(())
    }

    /// Reads `buf.len()` bytes at the cursor, advancing it.
    pub fn read(&mut self, buf: &mut [u8]) -> Result<(), LayoutError> {
        self.layout.read_slot_counted(self.spec.id, self.pos, buf)?;
        self.pos += buf.len() as u32;
        Ok(())
    }

    /// Writes `data` at the cursor, advancing it. Fails in
    /// [`OpenMode::ReadOnly`].
    pub fn write(&mut self, data: &[u8]) -> Result<(), LayoutError> {
        match self.mode {
            OpenMode::ReadOnly => Err(LayoutError::Flash(
                crate::device::FlashError::WriteWithoutErase,
            )),
            OpenMode::WriteAll => {
                self.layout.write_slot(self.spec.id, self.pos, data)?;
                self.pos += data.len() as u32;
                Ok(())
            }
            OpenMode::SequentialRewrite => {
                let end = u64::from(self.pos) + data.len() as u64;
                if end > u64::from(self.spec.size) {
                    return Err(LayoutError::Flash(crate::device::FlashError::OutOfBounds));
                }
                // Erase every sector the write touches that has not been
                // erased yet.
                while u64::from(self.next_unerased) < end {
                    self.layout
                        .erase_slot_sector(self.spec.id, self.next_unerased)?;
                    self.next_unerased += self.sector_size;
                }
                self.layout.write_slot(self.spec.id, self.pos, data)?;
                self.pos += data.len() as u32;
                Ok(())
            }
        }
    }

    /// Closes the handle (drop also suffices; provided for API symmetry
    /// with the paper's POSIX-style interface).
    pub fn close(self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{FlashError, FlashGeometry};
    use crate::layout::{configuration_a, standard};
    use crate::sim::SimFlash;

    fn layout() -> MemoryLayout {
        configuration_a(
            Box::new(SimFlash::new(FlashGeometry {
                size: 4096 * 8,
                sector_size: 4096,
                read_micros_per_byte: 1,
                write_micros_per_byte: 8,
                erase_micros_per_sector: 1000,
            })),
            4096 * 3,
        )
        .unwrap()
    }

    #[test]
    fn read_only_forbids_writes() {
        let mut layout = layout();
        let mut slot = layout.open(standard::SLOT_A, OpenMode::ReadOnly).unwrap();
        assert!(slot.write(b"nope").is_err());
    }

    #[test]
    fn write_all_erases_upfront() {
        let mut layout = layout();
        // Dirty the slot first.
        layout.erase_slot(standard::SLOT_A).unwrap();
        layout.write_slot(standard::SLOT_A, 0, &[0u8; 64]).unwrap();
        layout.reset_stats();

        let mut slot = layout.open(standard::SLOT_A, OpenMode::WriteAll).unwrap();
        slot.write(b"fresh").unwrap();
        slot.close();
        // All 3 sectors erased at open.
        assert_eq!(layout.total_stats().sectors_erased, 3);
        let mut buf = [0u8; 5];
        layout.read_slot(standard::SLOT_A, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"fresh");
    }

    #[test]
    fn sequential_rewrite_erases_lazily() {
        let mut layout = layout();
        layout.reset_stats();
        let mut slot = layout
            .open(standard::SLOT_A, OpenMode::SequentialRewrite)
            .unwrap();
        // Write 100 bytes: only the first sector should be erased.
        slot.write(&[0xAB; 100]).unwrap();
        assert_eq!(slot.layout.total_stats().sectors_erased, 1);
        // Write past the first sector boundary: second sector erased.
        slot.write(&vec![0xCD; 4096]).unwrap();
        assert_eq!(slot.layout.total_stats().sectors_erased, 2);
        slot.close();
        assert_eq!(layout.total_stats().sectors_erased, 2);
    }

    #[test]
    fn sequential_rewrite_content_correct_across_sectors() {
        let mut layout = layout();
        let data: Vec<u8> = (0..9000u32).map(|i| (i % 251) as u8).collect();
        let mut slot = layout
            .open(standard::SLOT_A, OpenMode::SequentialRewrite)
            .unwrap();
        for chunk in data.chunks(317) {
            slot.write(chunk).unwrap();
        }
        slot.close();
        let mut buf = vec![0u8; data.len()];
        layout.read_slot(standard::SLOT_A, 0, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn cursor_and_seek() {
        let mut layout = layout();
        let mut slot = layout.open(standard::SLOT_A, OpenMode::WriteAll).unwrap();
        slot.write(b"0123456789").unwrap();
        assert_eq!(slot.position(), 10);
        slot.seek(4).unwrap();
        let mut buf = [0u8; 3];
        slot.read(&mut buf).unwrap();
        assert_eq!(&buf, b"456");
        assert_eq!(slot.position(), 7);
        assert!(slot.seek(slot.size() + 1).is_err());
    }

    #[test]
    fn writes_beyond_slot_rejected() {
        let mut layout = layout();
        let mut slot = layout
            .open(standard::SLOT_A, OpenMode::SequentialRewrite)
            .unwrap();
        slot.seek(slot.size() - 4).unwrap();
        assert!(matches!(
            slot.write(&[0u8; 8]),
            Err(LayoutError::Flash(FlashError::OutOfBounds))
        ));
    }

    #[test]
    fn reads_count_into_stats() {
        let mut layout = layout();
        layout.reset_stats();
        let mut slot = layout.open(standard::SLOT_A, OpenMode::ReadOnly).unwrap();
        let mut buf = [0u8; 128];
        slot.read(&mut buf).unwrap();
        slot.close();
        assert_eq!(layout.total_stats().bytes_read, 128);
    }

    #[test]
    fn overwriting_programmed_flash_fails_without_erase() {
        let mut layout = layout();
        let mut slot = layout
            .open(standard::SLOT_A, OpenMode::SequentialRewrite)
            .unwrap();
        slot.write(&[0x11; 16]).unwrap();
        slot.close();
        // Raw write_slot bypasses the erase policy, so setting bits fails —
        // the invariant a real NOR controller enforces.
        let err = layout
            .write_slot(standard::SLOT_A, 0, &[0xFF; 4])
            .unwrap_err();
        assert!(matches!(
            err,
            LayoutError::Flash(FlashError::WriteWithoutErase)
        ));
    }
}
