//! In-memory simulated NOR flash with wear tracking and power-loss
//! injection.

use alloc::vec;
use alloc::vec::Vec;

use crate::device::{FlashDevice, FlashError, FlashGeometry, FlashStats};

/// A simulated NOR flash chip.
///
/// Enforces the real-device invariants — erase-before-write (writes AND
/// into the array and fail if they would need to set a bit), whole-sector
/// erase to `0xFF` — and tracks per-sector wear. A power-loss point can be
/// armed to cut an operation mid-way, leaving partially-programmed data
/// behind exactly as a real brown-out would; UpKit's power-loss-safety
/// tests drive this.
///
/// # Examples
///
/// ```
/// use upkit_flash::{SimFlash, FlashDevice, FlashGeometry};
///
/// let mut flash = SimFlash::new(FlashGeometry::internal_cc2650());
/// flash.erase_sector(0).unwrap();
/// flash.write(0, b"boot").unwrap();
/// let mut buf = [0u8; 4];
/// flash.read(0, &mut buf).unwrap();
/// assert_eq!(&buf, b"boot");
/// ```
#[derive(Debug)]
pub struct SimFlash {
    geometry: FlashGeometry,
    data: Vec<u8>,
    wear: Vec<u32>,
    stats: FlashStats,
    /// Remaining write budget before a simulated power cut, if armed.
    power_cut_after_bytes: Option<u64>,
    strict_program: bool,
}

impl SimFlash {
    /// Creates a device with every sector erased (`0xFF`).
    ///
    /// # Panics
    ///
    /// Panics if the geometry's size is not a positive multiple of its
    /// sector size.
    #[must_use]
    pub fn new(geometry: FlashGeometry) -> Self {
        assert!(
            geometry.sector_size > 0 && geometry.size.is_multiple_of(geometry.sector_size),
            "flash size must be a positive multiple of the sector size"
        );
        Self {
            data: vec![0xFF; geometry.size as usize],
            wear: vec![0; geometry.sector_count() as usize],
            geometry,
            stats: FlashStats::default(),
            power_cut_after_bytes: None,
            strict_program: true,
        }
    }

    /// Disables the erase-before-write check: writes AND silently, as some
    /// flash controllers permit. Used to model the paper's platforms that
    /// tolerate bit-clearing overwrites.
    pub fn set_strict_program(&mut self, strict: bool) {
        self.strict_program = strict;
    }

    /// Erase count of the sector containing `addr`, or `None` when
    /// `addr` is past the end of the device — the same bounds policy as
    /// the read/write/erase paths, which return
    /// [`FlashError::OutOfBounds`] rather than panicking.
    #[must_use]
    pub fn sector_wear(&self, addr: u32) -> Option<u32> {
        self.wear
            .get((addr / self.geometry.sector_size) as usize)
            .copied()
    }

    /// Highest erase count across all sectors.
    #[must_use]
    pub fn max_wear(&self) -> u32 {
        self.wear.iter().copied().max().unwrap_or(0)
    }

    fn check_range(&self, addr: u32, len: usize) -> Result<(), FlashError> {
        let end = u64::from(addr) + len as u64;
        if end > u64::from(self.geometry.size) {
            Err(FlashError::OutOfBounds)
        } else {
            Ok(())
        }
    }
}

impl FlashDevice for SimFlash {
    fn geometry(&self) -> FlashGeometry {
        self.geometry
    }

    fn read(&self, addr: u32, buf: &mut [u8]) -> Result<(), FlashError> {
        self.check_range(addr, buf.len())?;
        let start = addr as usize;
        buf.copy_from_slice(&self.data[start..start + buf.len()]);
        // Reads are free to count: interior mutability would complicate the
        // trait, so read stats are tracked by the IO layer instead.
        Ok(())
    }

    fn write(&mut self, addr: u32, data: &[u8]) -> Result<(), FlashError> {
        self.check_range(addr, data.len())?;
        self.stats.write_ops += 1;
        let start = addr as usize;
        for (i, &byte) in data.iter().enumerate() {
            if let Some(budget) = self.power_cut_after_bytes.as_mut() {
                if *budget == 0 {
                    return Err(FlashError::PowerLoss);
                }
                *budget -= 1;
            }
            let current = self.data[start + i];
            if self.strict_program && byte & !current != 0 {
                return Err(FlashError::WriteWithoutErase);
            }
            self.data[start + i] = current & byte;
            self.stats.bytes_written += 1;
        }
        Ok(())
    }

    fn erase_sector(&mut self, addr: u32) -> Result<(), FlashError> {
        self.check_range(addr, 1)?;
        let sector = addr / self.geometry.sector_size;
        let start = (sector * self.geometry.sector_size) as usize;
        let end = start + self.geometry.sector_size as usize;
        if let Some(budget) = self.power_cut_after_bytes.as_mut() {
            // An erase consumes sector-size worth of the write budget.
            let cost = u64::from(self.geometry.sector_size);
            if *budget < cost {
                // Partial erase: model as fully erased up to the budget.
                let partial_end = start + *budget as usize;
                self.data[start..partial_end].fill(0xFF);
                *budget = 0;
                return Err(FlashError::PowerLoss);
            }
            *budget -= cost;
        }
        self.data[start..end].fill(0xFF);
        self.wear[sector as usize] += 1;
        self.stats.sectors_erased += 1;
        Ok(())
    }

    fn stats(&self) -> FlashStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = FlashStats::default();
    }

    fn arm_power_cut_after(&mut self, bytes: u64) {
        self.power_cut_after_bytes = Some(bytes);
    }

    fn disarm_power_cut(&mut self) {
        self.power_cut_after_bytes = None;
    }

    fn max_sector_wear(&self) -> u32 {
        self.max_wear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SimFlash {
        SimFlash::new(FlashGeometry {
            size: 4096 * 4,
            sector_size: 4096,
            read_micros_per_byte: 1,
            write_micros_per_byte: 8,
            erase_micros_per_sector: 1000,
        })
    }

    #[test]
    fn starts_erased() {
        let flash = small();
        let mut buf = [0u8; 16];
        flash.read(100, &mut buf).unwrap();
        assert_eq!(buf, [0xFF; 16]);
    }

    #[test]
    fn write_then_read_back() {
        let mut flash = small();
        flash.write(0, b"hello flash").unwrap();
        let mut buf = [0u8; 11];
        flash.read(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello flash");
    }

    #[test]
    fn write_cannot_set_bits() {
        let mut flash = small();
        flash.write(0, &[0x0F]).unwrap();
        // 0x0F -> 0xF0 would need setting bits 4-7? No: 0xF0 & !0x0F != 0.
        assert_eq!(flash.write(0, &[0xF0]), Err(FlashError::WriteWithoutErase));
        // Clearing more bits is fine.
        flash.write(0, &[0x05]).unwrap();
        let mut buf = [0u8; 1];
        flash.read(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0x05);
    }

    #[test]
    fn non_strict_mode_ands_silently() {
        let mut flash = small();
        flash.set_strict_program(false);
        flash.write(0, &[0x0F]).unwrap();
        flash.write(0, &[0xF0]).unwrap();
        let mut buf = [0u8; 1];
        flash.read(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0x00); // AND of both writes
    }

    #[test]
    fn erase_restores_ff_and_counts_wear() {
        let mut flash = small();
        flash.write(4096, &[0u8; 100]).unwrap();
        assert_eq!(flash.sector_wear(4096), Some(0));
        flash.erase_sector(4096 + 50).unwrap();
        assert_eq!(flash.sector_wear(4096), Some(1));
        let mut buf = [0u8; 100];
        flash.read(4096, &mut buf).unwrap();
        assert_eq!(buf, [0xFF; 100]);
        // Other sectors untouched.
        assert_eq!(flash.sector_wear(0), Some(0));
        assert_eq!(flash.max_wear(), 1);
    }

    #[test]
    fn sector_wear_is_none_past_the_end() {
        let flash = small(); // 4 sectors of 4096
        assert_eq!(flash.sector_wear(4096 * 4 - 1), Some(0)); // last byte
        assert_eq!(flash.sector_wear(4096 * 4), None); // first invalid addr
        assert_eq!(flash.sector_wear(u32::MAX), None);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut flash = small();
        let mut buf = [0u8; 8];
        assert_eq!(
            flash.read(4096 * 4 - 4, &mut buf),
            Err(FlashError::OutOfBounds)
        );
        assert_eq!(flash.write(4096 * 4, &[1]), Err(FlashError::OutOfBounds));
        assert_eq!(flash.erase_sector(4096 * 4), Err(FlashError::OutOfBounds));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut flash = small();
        flash.write(0, &[0u8; 64]).unwrap();
        flash.erase_sector(0).unwrap();
        let stats = flash.stats();
        assert_eq!(stats.bytes_written, 64);
        assert_eq!(stats.sectors_erased, 1);
        assert_eq!(stats.elapsed_micros(&flash.geometry()), 64 * 8 + 1000);
        flash.reset_stats();
        assert_eq!(flash.stats(), FlashStats::default());
    }

    #[test]
    fn power_cut_interrupts_write() {
        let mut flash = small();
        flash.arm_power_cut_after(10);
        assert_eq!(flash.write(0, &[0u8; 64]), Err(FlashError::PowerLoss));
        // Exactly 10 bytes landed.
        let mut buf = [0u8; 64];
        flash.read(0, &mut buf).unwrap();
        assert_eq!(&buf[..10], &[0u8; 10]);
        assert_eq!(&buf[10..], &[0xFFu8; 54]);
        // After "reboot" the device works again.
        flash.disarm_power_cut();
        flash.write(16, &[0xAA; 4]).unwrap();
    }

    #[test]
    fn power_cut_interrupts_erase() {
        let mut flash = small();
        flash.write(0, &[0u8; 4096]).unwrap();
        flash.arm_power_cut_after(100);
        assert_eq!(flash.erase_sector(0), Err(FlashError::PowerLoss));
        let mut buf = [0u8; 200];
        flash.read(0, &mut buf).unwrap();
        // First 100 bytes erased, rest still programmed.
        assert_eq!(&buf[..100], &[0xFFu8; 100]);
        assert_eq!(&buf[100..], &[0u8; 100]);
    }

    #[test]
    fn torn_erase_earns_no_wear_and_no_erase_count() {
        // Accounting pin: a cut mid-erase leaves partially-reset data
        // behind but must not be counted as a completed erase cycle —
        // neither in the stats nor in the per-sector wear ledger.
        let mut flash = small();
        flash.erase_sector(0).unwrap();
        flash.write(0, &[0u8; 4096]).unwrap();
        let before = flash.stats();
        assert_eq!(flash.sector_wear(0), Some(1));

        flash.arm_power_cut_after(100);
        assert_eq!(flash.erase_sector(0), Err(FlashError::PowerLoss));
        let after = flash.stats();
        assert_eq!(after.sectors_erased, before.sectors_erased);
        assert_eq!(flash.sector_wear(0), Some(1), "torn erase earns no wear");
        assert_eq!(flash.max_wear(), 1);
        assert_eq!(
            after.bytes_written, before.bytes_written,
            "an erase programs no bytes, torn or not"
        );

        // Power restored: the completed retry is charged exactly once.
        flash.disarm_power_cut();
        flash.erase_sector(0).unwrap();
        assert_eq!(flash.stats().sectors_erased, before.sectors_erased + 1);
        assert_eq!(flash.sector_wear(0), Some(2));
    }

    #[test]
    fn torn_write_counts_exactly_the_landed_bytes() {
        // Accounting pin: `bytes_written` is the number of bytes that
        // actually reached the array, while `write_ops` still charges the
        // interrupted operation's fixed setup cost.
        let mut flash = small();
        flash.arm_power_cut_after(10);
        assert_eq!(flash.write(0, &[0u8; 64]), Err(FlashError::PowerLoss));
        let stats = flash.stats();
        assert_eq!(stats.bytes_written, 10);
        assert_eq!(stats.write_ops, 1);
        assert_eq!(stats.sectors_erased, 0);

        // A second attempt while still cut lands nothing more but still
        // pays its op cost.
        assert_eq!(flash.write(32, &[0u8; 8]), Err(FlashError::PowerLoss));
        let stats = flash.stats();
        assert_eq!(stats.bytes_written, 10);
        assert_eq!(stats.write_ops, 2);
    }

    #[test]
    #[should_panic(expected = "multiple of the sector size")]
    fn rejects_misaligned_geometry() {
        let _ = SimFlash::new(FlashGeometry {
            size: 5000,
            sector_size: 4096,
            read_micros_per_byte: 0,
            write_micros_per_byte: 0,
            erase_micros_per_sector: 0,
        });
    }
}
