//! The flash-device abstraction: what UpKit's *memory interface* sits on.
//!
//! Real NOR flash — the storage on every platform the paper evaluates —
//! has three properties that shape UpKit's memory module: writes can only
//! clear bits (`1 → 0`), erasure happens in whole sectors (resetting them to
//! `0xFF`), and sectors wear out. [`FlashDevice`] captures exactly this
//! contract so the slot and IO layers behave like their on-device
//! counterparts.

/// Errors surfaced by flash devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlashError {
    /// An access extended beyond the end of the device.
    OutOfBounds,
    /// A write tried to set a cleared bit (`0 → 1`) without an erase.
    WriteWithoutErase,
    /// Simulated power loss interrupted the operation mid-way.
    PowerLoss,
    /// The backing store failed (file-backed devices).
    Backing,
}

impl core::fmt::Display for FlashError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::OutOfBounds => f.write_str("flash access out of bounds"),
            Self::WriteWithoutErase => {
                f.write_str("flash write attempted to set a bit without erasing")
            }
            Self::PowerLoss => f.write_str("power lost during flash operation"),
            Self::Backing => f.write_str("flash backing store failed"),
        }
    }
}

impl core::error::Error for FlashError {}

/// Geometry and timing of a flash device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlashGeometry {
    /// Total capacity in bytes (a multiple of `sector_size`).
    pub size: u32,
    /// Erase-sector size in bytes.
    pub sector_size: u32,
    /// Microseconds to read one byte (amortized).
    pub read_micros_per_byte: u64,
    /// Microseconds to program one byte (amortized).
    pub write_micros_per_byte: u64,
    /// Microseconds to erase one sector.
    pub erase_micros_per_sector: u64,
}

impl FlashGeometry {
    /// Internal flash of an nRF52840-class MCU: 4 kB sectors.
    #[must_use]
    pub fn internal_nrf52840() -> Self {
        Self {
            size: 1024 * 1024,
            sector_size: 4096,
            read_micros_per_byte: 0, // memory-mapped reads
            write_micros_per_byte: 8,
            erase_micros_per_sector: 85_000,
        }
    }

    /// Internal flash of a TI CC2650-class MCU (128 kB, 4 kB sectors).
    #[must_use]
    pub fn internal_cc2650() -> Self {
        Self {
            size: 128 * 1024,
            sector_size: 4096,
            read_micros_per_byte: 0,
            write_micros_per_byte: 10,
            erase_micros_per_sector: 8_000,
        }
    }

    /// External SPI NOR flash (as used by the CC2650 LaunchPad for the
    /// non-bootable slot): slower, accessed over the serial bus.
    #[must_use]
    pub fn external_spi_nor() -> Self {
        Self {
            size: 1024 * 1024,
            sector_size: 4096,
            read_micros_per_byte: 2,
            write_micros_per_byte: 12,
            erase_micros_per_sector: 60_000,
        }
    }

    /// Number of sectors on the device.
    #[must_use]
    pub fn sector_count(&self) -> u32 {
        self.size / self.sector_size
    }
}

/// Cumulative operation counters, the basis for time/energy accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlashStats {
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes programmed.
    pub bytes_written: u64,
    /// Number of program operations (write calls). Real flash controllers
    /// pay a fixed setup cost per operation, which is why UpKit's buffer
    /// stage batches writes to sector size.
    pub write_ops: u64,
    /// Total sector erasures.
    pub sectors_erased: u64,
}

impl FlashStats {
    /// Microseconds of flash time implied by these counters under `geometry`.
    #[must_use]
    pub fn elapsed_micros(&self, geometry: &FlashGeometry) -> u64 {
        self.bytes_read * geometry.read_micros_per_byte
            + self.bytes_written * geometry.write_micros_per_byte
            + self.sectors_erased * geometry.erase_micros_per_sector
    }
}

/// A sector-erased, bit-clearing flash device.
pub trait FlashDevice: Send {
    /// Device geometry.
    fn geometry(&self) -> FlashGeometry;

    /// Reads `buf.len()` bytes starting at `addr`.
    fn read(&self, addr: u32, buf: &mut [u8]) -> Result<(), FlashError>;

    /// Programs `data` at `addr`. Only bit transitions `1 → 0` are legal;
    /// attempting to set a bit fails with [`FlashError::WriteWithoutErase`].
    fn write(&mut self, addr: u32, data: &[u8]) -> Result<(), FlashError>;

    /// Erases the sector containing `addr` back to `0xFF`.
    fn erase_sector(&mut self, addr: u32) -> Result<(), FlashError>;

    /// Operation counters since construction (or the last reset).
    fn stats(&self) -> FlashStats;

    /// Resets the operation counters.
    fn reset_stats(&mut self);

    /// Testing hook: arms a simulated power cut after `bytes` further
    /// programmed/erased bytes.
    ///
    /// Required (no default body) deliberately: an early revision gave
    /// `disarm_power_cut` an empty default, so a device could implement
    /// arming and silently inherit a no-op disarm — the cut then stuck
    /// across simulated reboots forever. Forcing every implementation to
    /// spell out both halves keeps arm/disarm in one place per device.
    fn arm_power_cut_after(&mut self, bytes: u64);

    /// Testing hook: clears any armed power cut (the simulated reboot).
    /// Must leave the device fully operational; see [`Self::arm_power_cut_after`]
    /// for why this has no default body.
    fn disarm_power_cut(&mut self);

    /// Highest per-sector erase count, for endurance studies. Devices that
    /// do not track wear report 0.
    fn max_sector_wear(&self) -> u32 {
        0
    }
}
