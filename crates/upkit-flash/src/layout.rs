//! Slot tables: how UpKit organizes persistent memory.
//!
//! UpKit divides the device's flash into *slots*, each holding one update
//! image. Slots are **bootable** (directly executable in place) or
//! **non-bootable** (must be copied to a bootable slot first), and may live
//! on internal or external flash — the CC2650, whose internal flash cannot
//! hold two images, keeps its non-bootable slot on external SPI NOR. The
//! two configurations of the paper's Fig. 6 are provided as constructors:
//! Configuration A (two bootable slots, enabling A/B updates) and
//! Configuration B (one bootable + one non-bootable slot, static updates).

use alloc::boxed::Box;
use alloc::vec;
use alloc::vec::Vec;

use upkit_trace::{Counters, Event, Tracer};

use crate::device::{FlashDevice, FlashError, FlashStats};

/// Identifies a slot within a [`MemoryLayout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlotId(pub u8);

impl core::fmt::Display for SlotId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

/// Whether a slot's contents can be executed in place.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotKind {
    /// Directly executable: the bootloader can jump into this slot.
    Bootable,
    /// Staging only: images must be moved to a bootable slot before boot.
    NonBootable,
}

/// Placement of one slot on one flash device.
#[derive(Clone, Copy, Debug)]
pub struct SlotSpec {
    /// The slot's identifier.
    pub id: SlotId,
    /// Bootable or non-bootable.
    pub kind: SlotKind,
    /// Index of the backing device within the layout.
    pub device: usize,
    /// Byte offset of the slot on the device (sector-aligned).
    pub offset: u32,
    /// Slot size in bytes (a multiple of the device's sector size).
    pub size: u32,
}

/// Errors raised by layout-level operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayoutError {
    /// The referenced slot does not exist.
    UnknownSlot,
    /// A slot spec was misaligned, out of device bounds, or overlapping.
    InvalidSpec,
    /// Source and destination of a copy/swap differ in size.
    SizeMismatch,
    /// An underlying flash operation failed.
    Flash(FlashError),
}

impl core::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnknownSlot => f.write_str("unknown slot id"),
            Self::InvalidSpec => f.write_str("slot spec invalid (alignment/bounds/overlap)"),
            Self::SizeMismatch => f.write_str("slot sizes differ"),
            Self::Flash(e) => write!(f, "flash error: {e}"),
        }
    }
}

impl core::error::Error for LayoutError {
    fn source(&self) -> Option<&(dyn core::error::Error + 'static)> {
        match self {
            Self::Flash(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FlashError> for LayoutError {
    fn from(e: FlashError) -> Self {
        Self::Flash(e)
    }
}

/// A set of flash devices plus the slot table laid out over them.
///
/// This is the state behind UpKit's *memory module*; the POSIX-like slot IO
/// of [`crate::io`] operates on it.
pub struct MemoryLayout {
    devices: Vec<Box<dyn FlashDevice>>,
    slots: Vec<SlotSpec>,
    bytes_read: u64,
    tracer: Tracer,
}

impl core::fmt::Debug for MemoryLayout {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MemoryLayout")
            .field("devices", &self.devices.len())
            .field("slots", &self.slots)
            .finish()
    }
}

impl Default for MemoryLayout {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryLayout {
    /// Creates an empty layout.
    #[must_use]
    pub fn new() -> Self {
        Self {
            devices: Vec::new(),
            slots: Vec::new(),
            bytes_read: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs the tracer charged by every slot operation. The default
    /// is a disabled tracer: counters accumulate locally, no events.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The tracer this layout charges flash activity to.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Adds a flash device, returning its index for use in [`SlotSpec`]s.
    pub fn add_device(&mut self, device: Box<dyn FlashDevice>) -> usize {
        self.devices.push(device);
        self.devices.len() - 1
    }

    /// Registers a slot after validating alignment, bounds, uniqueness, and
    /// non-overlap with existing slots on the same device.
    pub fn add_slot(&mut self, spec: SlotSpec) -> Result<(), LayoutError> {
        let device = self
            .devices
            .get(spec.device)
            .ok_or(LayoutError::InvalidSpec)?;
        let geometry = device.geometry();
        let sector = geometry.sector_size;
        let aligned =
            spec.offset.is_multiple_of(sector) && spec.size.is_multiple_of(sector) && spec.size > 0;
        let in_bounds = u64::from(spec.offset) + u64::from(spec.size) <= u64::from(geometry.size);
        if !aligned || !in_bounds {
            return Err(LayoutError::InvalidSpec);
        }
        let overlaps = self.slots.iter().any(|s| {
            s.id == spec.id
                || (s.device == spec.device
                    && spec.offset < s.offset + s.size
                    && s.offset < spec.offset + spec.size)
        });
        if overlaps {
            return Err(LayoutError::InvalidSpec);
        }
        self.slots.push(spec);
        Ok(())
    }

    /// Looks up a slot spec.
    pub fn slot(&self, id: SlotId) -> Result<SlotSpec, LayoutError> {
        self.slots
            .iter()
            .copied()
            .find(|s| s.id == id)
            .ok_or(LayoutError::UnknownSlot)
    }

    /// All registered slots.
    #[must_use]
    pub fn slots(&self) -> &[SlotSpec] {
        &self.slots
    }

    /// Slots of a given kind, in registration order.
    pub fn slots_of_kind(&self, kind: SlotKind) -> impl Iterator<Item = &SlotSpec> {
        self.slots.iter().filter(move |s| s.kind == kind)
    }

    /// Reads from a slot at `offset` within the slot.
    pub fn read_slot(&self, id: SlotId, offset: u32, buf: &mut [u8]) -> Result<(), LayoutError> {
        let spec = self.slot(id)?;
        if u64::from(offset) + buf.len() as u64 > u64::from(spec.size) {
            return Err(LayoutError::Flash(FlashError::OutOfBounds));
        }
        self.devices[spec.device].read(spec.offset + offset, buf)?;
        Counters::add(
            &self.tracer.counters().flash_reads[Counters::slot_bucket(id.0)],
            buf.len() as u64,
        );
        Ok(())
    }

    /// Reads from a slot, counting the bytes toward [`Self::total_stats`].
    pub fn read_slot_counted(
        &mut self,
        id: SlotId,
        offset: u32,
        buf: &mut [u8],
    ) -> Result<(), LayoutError> {
        self.read_slot(id, offset, buf)?;
        self.bytes_read += buf.len() as u64;
        self.tracer.emit(|| Event::FlashRead {
            slot: id.0,
            bytes: buf.len() as u64,
        });
        Ok(())
    }

    /// Writes to a slot at `offset` within the slot (no implicit erase —
    /// use the IO layer's open modes for that).
    pub fn write_slot(&mut self, id: SlotId, offset: u32, data: &[u8]) -> Result<(), LayoutError> {
        let spec = self.slot(id)?;
        if u64::from(offset) + data.len() as u64 > u64::from(spec.size) {
            return Err(LayoutError::Flash(FlashError::OutOfBounds));
        }
        self.devices[spec.device].write(spec.offset + offset, data)?;
        Counters::add(
            &self.tracer.counters().flash_writes[Counters::slot_bucket(id.0)],
            data.len() as u64,
        );
        self.tracer.emit(|| Event::FlashWrite {
            slot: id.0,
            bytes: data.len() as u64,
        });
        Ok(())
    }

    /// Erases every sector of a slot.
    pub fn erase_slot(&mut self, id: SlotId) -> Result<(), LayoutError> {
        let spec = self.slot(id)?;
        let sector = self.devices[spec.device].geometry().sector_size;
        let erase_counter = &self.tracer.counters().flash_erases[Counters::slot_bucket(id.0)];
        let mut addr = spec.offset;
        let mut sectors = 0u64;
        while addr < spec.offset + spec.size {
            // Charge as we go: a power cut mid-erase must still account
            // for the sectors that were consumed before the failure.
            self.devices[spec.device].erase_sector(addr)?;
            Counters::add(erase_counter, 1);
            addr += sector;
            sectors += 1;
        }
        self.tracer.emit(|| Event::FlashErase {
            slot: id.0,
            sectors,
        });
        Ok(())
    }

    /// Erases the sector of a slot containing slot-relative `offset`.
    pub fn erase_slot_sector(&mut self, id: SlotId, offset: u32) -> Result<(), LayoutError> {
        let spec = self.slot(id)?;
        if offset >= spec.size {
            return Err(LayoutError::Flash(FlashError::OutOfBounds));
        }
        self.devices[spec.device].erase_sector(spec.offset + offset)?;
        Counters::add(
            &self.tracer.counters().flash_erases[Counters::slot_bucket(id.0)],
            1,
        );
        self.tracer.emit(|| Event::FlashErase {
            slot: id.0,
            sectors: 1,
        });
        Ok(())
    }

    /// Copies `src` into `dst` sector by sector (erasing `dst` as it goes),
    /// using a single sector-sized RAM buffer as on the device.
    pub fn copy_slot(&mut self, src: SlotId, dst: SlotId) -> Result<(), LayoutError> {
        let src_spec = self.slot(src)?;
        let dst_spec = self.slot(dst)?;
        if src_spec.size != dst_spec.size {
            return Err(LayoutError::SizeMismatch);
        }
        let sector = self.devices[dst_spec.device].geometry().sector_size;
        // Striding with one sector size across two devices is only sound
        // when they agree; mixed geometries would mis-align erases.
        if self.devices[src_spec.device].geometry().sector_size != sector {
            return Err(LayoutError::SizeMismatch);
        }
        let counters = self.tracer.counters();
        let src_bucket = Counters::slot_bucket(src.0);
        let dst_bucket = Counters::slot_bucket(dst.0);
        let mut buf = vec![0u8; sector as usize];
        let mut offset = 0u32;
        while offset < src_spec.size {
            self.devices[src_spec.device].read(src_spec.offset + offset, &mut buf)?;
            self.bytes_read += u64::from(sector);
            Counters::add(&counters.flash_reads[src_bucket], u64::from(sector));
            self.devices[dst_spec.device].erase_sector(dst_spec.offset + offset)?;
            Counters::add(&counters.flash_erases[dst_bucket], 1);
            self.devices[dst_spec.device].write(dst_spec.offset + offset, &buf)?;
            Counters::add(&counters.flash_writes[dst_bucket], u64::from(sector));
            offset += sector;
        }
        Ok(())
    }

    /// Swaps the contents of two equal-sized slots sector by sector with
    /// two RAM buffers — the static-update loading-phase operation whose
    /// cost Fig. 8c compares against the A/B jump.
    pub fn swap_slots(&mut self, a: SlotId, b: SlotId) -> Result<(), LayoutError> {
        let a_spec = self.slot(a)?;
        let b_spec = self.slot(b)?;
        if a_spec.size != b_spec.size {
            return Err(LayoutError::SizeMismatch);
        }
        let sector = self.devices[a_spec.device].geometry().sector_size;
        if self.devices[b_spec.device].geometry().sector_size != sector {
            return Err(LayoutError::SizeMismatch);
        }
        let counters = self.tracer.counters();
        let a_bucket = Counters::slot_bucket(a.0);
        let b_bucket = Counters::slot_bucket(b.0);
        let mut buf_a = vec![0u8; sector as usize];
        let mut buf_b = vec![0u8; sector as usize];
        let mut offset = 0u32;
        while offset < a_spec.size {
            self.devices[a_spec.device].read(a_spec.offset + offset, &mut buf_a)?;
            self.devices[b_spec.device].read(b_spec.offset + offset, &mut buf_b)?;
            self.bytes_read += 2 * u64::from(sector);
            Counters::add(&counters.flash_reads[a_bucket], u64::from(sector));
            Counters::add(&counters.flash_reads[b_bucket], u64::from(sector));
            self.devices[a_spec.device].erase_sector(a_spec.offset + offset)?;
            Counters::add(&counters.flash_erases[a_bucket], 1);
            self.devices[a_spec.device].write(a_spec.offset + offset, &buf_b)?;
            Counters::add(&counters.flash_writes[a_bucket], u64::from(sector));
            self.devices[b_spec.device].erase_sector(b_spec.offset + offset)?;
            Counters::add(&counters.flash_erases[b_bucket], 1);
            self.devices[b_spec.device].write(b_spec.offset + offset, &buf_a)?;
            Counters::add(&counters.flash_writes[b_bucket], u64::from(sector));
            offset += sector;
        }
        Counters::add(&counters.slot_swaps, 1);
        self.tracer.emit(|| Event::SlotsSwapped { a: a.0, b: b.0 });
        Ok(())
    }

    /// Mutable access to a backing device (power-loss arming in tests).
    pub fn device_mut(&mut self, index: usize) -> Option<&mut (dyn FlashDevice + '_)> {
        self.devices.get_mut(index).map(|d| &mut **d as _)
    }

    /// Clears any armed power cut on every backing device — the moment
    /// power returns on a simulated reboot. Fault-injecting devices may
    /// use this signal to arm a follow-up cut on the recovery path.
    pub fn disarm_power_cuts(&mut self) {
        for device in &mut self.devices {
            device.disarm_power_cut();
        }
    }

    /// Geometry of a backing device.
    #[must_use]
    pub fn device_geometry(&self, index: usize) -> Option<crate::device::FlashGeometry> {
        self.devices.get(index).map(|d| d.geometry())
    }

    /// Highest per-sector erase count across all devices (endurance).
    #[must_use]
    pub fn max_sector_wear(&self) -> u32 {
        self.devices
            .iter()
            .map(|d| d.max_sector_wear())
            .max()
            .unwrap_or(0)
    }

    /// Aggregated flash statistics across all devices, plus layout-level
    /// read accounting.
    #[must_use]
    pub fn total_stats(&self) -> FlashStats {
        let mut total = FlashStats {
            bytes_read: self.bytes_read,
            ..FlashStats::default()
        };
        for device in &self.devices {
            let s = device.stats();
            total.bytes_written += s.bytes_written;
            total.write_ops += s.write_ops;
            total.sectors_erased += s.sectors_erased;
        }
        total
    }

    /// Resets all statistics.
    pub fn reset_stats(&mut self) {
        self.bytes_read = 0;
        for device in &mut self.devices {
            device.reset_stats();
        }
    }
}

/// Conventional slot ids used by the standard configurations.
pub mod standard {
    use super::SlotId;

    /// Primary bootable slot.
    pub const SLOT_A: SlotId = SlotId(0);
    /// Secondary slot (bootable in Configuration A, staging in B).
    pub const SLOT_B: SlotId = SlotId(1);
    /// Optional recovery slot on external flash.
    pub const RECOVERY: SlotId = SlotId(2);
}

/// Builds the paper's **Configuration A**: two bootable slots on internal
/// flash (A/B updates — the bootloader jumps to the newest valid slot).
pub fn configuration_a(
    internal: Box<dyn FlashDevice>,
    slot_size: u32,
) -> Result<MemoryLayout, LayoutError> {
    let mut layout = MemoryLayout::new();
    let dev = layout.add_device(internal);
    layout.add_slot(SlotSpec {
        id: standard::SLOT_A,
        kind: SlotKind::Bootable,
        device: dev,
        offset: 0,
        size: slot_size,
    })?;
    layout.add_slot(SlotSpec {
        id: standard::SLOT_B,
        kind: SlotKind::Bootable,
        device: dev,
        offset: slot_size,
        size: slot_size,
    })?;
    Ok(layout)
}

/// Builds the paper's **Configuration A** including the recovery slot of
/// Fig. 6: two bootable slots on internal flash plus a non-bootable
/// recovery slot on external memory holding a known-good image.
pub fn configuration_a_with_recovery(
    internal: Box<dyn FlashDevice>,
    external: Box<dyn FlashDevice>,
    slot_size: u32,
) -> Result<MemoryLayout, LayoutError> {
    let mut layout = configuration_a(internal, slot_size)?;
    let ext = layout.add_device(external);
    layout.add_slot(SlotSpec {
        id: standard::RECOVERY,
        kind: SlotKind::NonBootable,
        device: ext,
        offset: 0,
        size: slot_size,
    })?;
    Ok(layout)
}

/// Builds the paper's **Configuration B**: one bootable slot plus one
/// non-bootable staging slot (static updates — images are swapped or copied
/// into the bootable slot). Pass an external device to place the staging
/// slot off-chip, as on the CC2650.
pub fn configuration_b(
    internal: Box<dyn FlashDevice>,
    external: Option<Box<dyn FlashDevice>>,
    slot_size: u32,
) -> Result<MemoryLayout, LayoutError> {
    let mut layout = MemoryLayout::new();
    let internal_dev = layout.add_device(internal);
    let (staging_dev, staging_offset) = match external {
        Some(dev) => (layout.add_device(dev), 0),
        None => (internal_dev, slot_size),
    };
    layout.add_slot(SlotSpec {
        id: standard::SLOT_A,
        kind: SlotKind::Bootable,
        device: internal_dev,
        offset: 0,
        size: slot_size,
    })?;
    layout.add_slot(SlotSpec {
        id: standard::SLOT_B,
        kind: SlotKind::NonBootable,
        device: staging_dev,
        offset: staging_offset,
        size: slot_size,
    })?;
    Ok(layout)
}

/// Builds a multi-component layout on internal flash: `components`
/// (bootable, staging) slot pairs followed by a one-slot commit journal.
///
/// Component `c`'s bootable slot is `SlotId(2c)`, its staging slot
/// `SlotId(2c + 1)`; the journal slot is `SlotId(2 * components)` and is
/// `journal_size` bytes (one sector is enough).
pub fn configuration_multi(
    internal: Box<dyn FlashDevice>,
    components: u8,
    slot_size: u32,
    journal_size: u32,
) -> Result<MemoryLayout, LayoutError> {
    let mut layout = MemoryLayout::new();
    let dev = layout.add_device(internal);
    for c in 0..components {
        let pair_base = u32::from(c) * 2 * slot_size;
        layout.add_slot(SlotSpec {
            id: SlotId(c * 2),
            kind: SlotKind::Bootable,
            device: dev,
            offset: pair_base,
            size: slot_size,
        })?;
        layout.add_slot(SlotSpec {
            id: SlotId(c * 2 + 1),
            kind: SlotKind::NonBootable,
            device: dev,
            offset: pair_base + slot_size,
            size: slot_size,
        })?;
    }
    layout.add_slot(SlotSpec {
        id: SlotId(components * 2),
        kind: SlotKind::NonBootable,
        device: dev,
        offset: u32::from(components) * 2 * slot_size,
        size: journal_size,
    })?;
    Ok(layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FlashGeometry;
    use crate::sim::SimFlash;

    fn geometry() -> FlashGeometry {
        FlashGeometry {
            size: 4096 * 8,
            sector_size: 4096,
            read_micros_per_byte: 1,
            write_micros_per_byte: 8,
            erase_micros_per_sector: 1000,
        }
    }

    fn layout_ab() -> MemoryLayout {
        configuration_a(Box::new(SimFlash::new(geometry())), 4096 * 3).unwrap()
    }

    #[test]
    fn configuration_a_has_two_bootable_slots() {
        let layout = layout_ab();
        assert_eq!(layout.slots_of_kind(SlotKind::Bootable).count(), 2);
        assert_eq!(layout.slots_of_kind(SlotKind::NonBootable).count(), 0);
    }

    #[test]
    fn configuration_b_internal_staging() {
        let layout = configuration_b(Box::new(SimFlash::new(geometry())), None, 4096 * 2).unwrap();
        assert_eq!(layout.slots_of_kind(SlotKind::Bootable).count(), 1);
        let staging = layout.slot(standard::SLOT_B).unwrap();
        assert_eq!(staging.device, 0);
        assert_eq!(staging.offset, 4096 * 2);
    }

    #[test]
    fn configuration_b_external_staging() {
        let layout = configuration_b(
            Box::new(SimFlash::new(geometry())),
            Some(Box::new(SimFlash::new(FlashGeometry::external_spi_nor()))),
            4096 * 2,
        )
        .unwrap();
        let staging = layout.slot(standard::SLOT_B).unwrap();
        assert_eq!(staging.device, 1);
        assert_eq!(staging.offset, 0);
    }

    #[test]
    fn rejects_misaligned_slot() {
        let mut layout = MemoryLayout::new();
        let dev = layout.add_device(Box::new(SimFlash::new(geometry())));
        let bad = SlotSpec {
            id: SlotId(9),
            kind: SlotKind::Bootable,
            device: dev,
            offset: 100, // not sector aligned
            size: 4096,
        };
        assert_eq!(layout.add_slot(bad), Err(LayoutError::InvalidSpec));
    }

    #[test]
    fn rejects_overlapping_slots() {
        let mut layout = MemoryLayout::new();
        let dev = layout.add_device(Box::new(SimFlash::new(geometry())));
        layout
            .add_slot(SlotSpec {
                id: SlotId(0),
                kind: SlotKind::Bootable,
                device: dev,
                offset: 0,
                size: 4096 * 2,
            })
            .unwrap();
        let overlapping = SlotSpec {
            id: SlotId(1),
            kind: SlotKind::Bootable,
            device: dev,
            offset: 4096,
            size: 4096,
        };
        assert_eq!(layout.add_slot(overlapping), Err(LayoutError::InvalidSpec));
    }

    #[test]
    fn rejects_duplicate_ids() {
        let mut layout = MemoryLayout::new();
        let dev = layout.add_device(Box::new(SimFlash::new(geometry())));
        let spec = SlotSpec {
            id: SlotId(0),
            kind: SlotKind::Bootable,
            device: dev,
            offset: 0,
            size: 4096,
        };
        layout.add_slot(spec).unwrap();
        let same_id_elsewhere = SlotSpec {
            offset: 4096,
            ..spec
        };
        assert_eq!(
            layout.add_slot(same_id_elsewhere),
            Err(LayoutError::InvalidSpec)
        );
    }

    #[test]
    fn rejects_out_of_bounds_slot() {
        let mut layout = MemoryLayout::new();
        let dev = layout.add_device(Box::new(SimFlash::new(geometry())));
        let too_big = SlotSpec {
            id: SlotId(0),
            kind: SlotKind::Bootable,
            device: dev,
            offset: 4096 * 6,
            size: 4096 * 3,
        };
        assert_eq!(layout.add_slot(too_big), Err(LayoutError::InvalidSpec));
    }

    #[test]
    fn slot_read_write_round_trip() {
        let mut layout = layout_ab();
        layout.erase_slot(standard::SLOT_A).unwrap();
        layout
            .write_slot(standard::SLOT_A, 16, b"image-bytes")
            .unwrap();
        let mut buf = [0u8; 11];
        layout.read_slot(standard::SLOT_A, 16, &mut buf).unwrap();
        assert_eq!(&buf, b"image-bytes");
    }

    #[test]
    fn slot_bounds_enforced() {
        let mut layout = layout_ab();
        let mut buf = [0u8; 32];
        assert!(matches!(
            layout.read_slot(standard::SLOT_A, 4096 * 3 - 16, &mut buf),
            Err(LayoutError::Flash(FlashError::OutOfBounds))
        ));
        assert!(matches!(
            layout.write_slot(standard::SLOT_A, 4096 * 3, b"x"),
            Err(LayoutError::Flash(FlashError::OutOfBounds))
        ));
        assert_eq!(
            layout.read_slot(SlotId(77), 0, &mut buf),
            Err(LayoutError::UnknownSlot)
        );
    }

    #[test]
    fn copy_slot_moves_image() {
        let mut layout = layout_ab();
        layout.erase_slot(standard::SLOT_A).unwrap();
        layout
            .write_slot(standard::SLOT_A, 0, b"firmware-v2")
            .unwrap();
        layout
            .copy_slot(standard::SLOT_A, standard::SLOT_B)
            .unwrap();
        let mut buf = [0u8; 11];
        layout.read_slot(standard::SLOT_B, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"firmware-v2");
    }

    #[test]
    fn swap_slots_exchanges_contents() {
        let mut layout = layout_ab();
        layout.erase_slot(standard::SLOT_A).unwrap();
        layout.erase_slot(standard::SLOT_B).unwrap();
        layout.write_slot(standard::SLOT_A, 0, b"AAAA").unwrap();
        layout.write_slot(standard::SLOT_B, 0, b"BBBB").unwrap();
        layout
            .swap_slots(standard::SLOT_A, standard::SLOT_B)
            .unwrap();
        let mut buf = [0u8; 4];
        layout.read_slot(standard::SLOT_A, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"BBBB");
        layout.read_slot(standard::SLOT_B, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"AAAA");
    }

    #[test]
    fn swap_cost_is_two_erases_and_writes_per_sector() {
        let mut layout = layout_ab();
        layout.erase_slot(standard::SLOT_A).unwrap();
        layout.erase_slot(standard::SLOT_B).unwrap();
        layout.reset_stats();
        layout
            .swap_slots(standard::SLOT_A, standard::SLOT_B)
            .unwrap();
        let stats = layout.total_stats();
        // 3 sectors per slot: 6 erases, 6 sector-writes, 6 sector-reads.
        assert_eq!(stats.sectors_erased, 6);
        assert_eq!(stats.bytes_written, 6 * 4096);
        assert_eq!(stats.bytes_read, 6 * 4096);
    }

    #[test]
    fn torn_slot_erase_charges_only_completed_sectors() {
        use upkit_trace::Tracer;

        // The trace ledger and the device stats must tell the same story
        // when a power cut lands mid-erase: sectors that completed are
        // charged, the torn one is not.
        let mut layout = layout_ab();
        let tracer = Tracer::disabled();
        layout.set_tracer(tracer.clone());

        // Budget covers one full 4096-byte sector plus part of the next.
        layout
            .device_mut(0)
            .unwrap()
            .arm_power_cut_after(4096 + 100);
        assert_eq!(
            layout.erase_slot(standard::SLOT_A),
            Err(LayoutError::Flash(FlashError::PowerLoss))
        );
        let snap = tracer.counters().snapshot();
        assert_eq!(
            snap.flash_erases[Counters::slot_bucket(standard::SLOT_A.0)],
            1,
            "exactly one sector completed before the cut"
        );
        assert_eq!(layout.total_stats().sectors_erased, 1);
        assert_eq!(layout.max_sector_wear(), 1, "the torn sector earns no wear");
    }

    #[test]
    fn torn_slot_write_charges_nothing_to_the_tracer() {
        use upkit_trace::Tracer;

        let mut layout = layout_ab();
        let tracer = Tracer::disabled();
        layout.set_tracer(tracer.clone());
        layout.erase_slot(standard::SLOT_A).unwrap();
        layout.reset_stats();

        layout.device_mut(0).unwrap().arm_power_cut_after(7);
        assert_eq!(
            layout.write_slot(standard::SLOT_A, 0, &[0u8; 16]),
            Err(LayoutError::Flash(FlashError::PowerLoss))
        );
        let snap = tracer.counters().snapshot();
        assert_eq!(
            snap.flash_writes[Counters::slot_bucket(standard::SLOT_A.0)],
            0,
            "an interrupted slot write charges no trace bytes"
        );
        assert_eq!(
            layout.total_stats().bytes_written,
            7,
            "device stats count exactly the landed bytes"
        );

        // Power restored: the ledger resumes normally.
        layout.disarm_power_cuts();
        layout.write_slot(standard::SLOT_A, 16, &[0u8; 16]).unwrap();
        let snap = tracer.counters().snapshot();
        assert_eq!(
            snap.flash_writes[Counters::slot_bucket(standard::SLOT_A.0)],
            16
        );
    }

    #[test]
    fn copy_rejects_size_mismatch() {
        let mut layout = MemoryLayout::new();
        let dev = layout.add_device(Box::new(SimFlash::new(geometry())));
        layout
            .add_slot(SlotSpec {
                id: SlotId(0),
                kind: SlotKind::Bootable,
                device: dev,
                offset: 0,
                size: 4096,
            })
            .unwrap();
        layout
            .add_slot(SlotSpec {
                id: SlotId(1),
                kind: SlotKind::NonBootable,
                device: dev,
                offset: 4096,
                size: 4096 * 2,
            })
            .unwrap();
        assert_eq!(
            layout.copy_slot(SlotId(0), SlotId(1)),
            Err(LayoutError::SizeMismatch)
        );
        assert_eq!(
            layout.swap_slots(SlotId(0), SlotId(1)),
            Err(LayoutError::SizeMismatch)
        );
    }
}
