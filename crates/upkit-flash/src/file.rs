//! File-backed flash device.
//!
//! The paper's memory interface "allows assigning a Linux file to each
//! slot, which gives the ability to work with devices supporting a file
//! system, as well as to test the modules without the need of a simulator."
//! [`FileFlash`] reproduces that: the same NOR semantics as [`crate::SimFlash`],
//! persisted to a file after every mutation.

use std::fs;
use std::path::{Path, PathBuf};

use crate::device::{FlashDevice, FlashError, FlashGeometry, FlashStats};
use crate::sim::SimFlash;

/// A flash device persisted to a file on the host filesystem.
#[derive(Debug)]
pub struct FileFlash {
    inner: SimFlash,
    path: PathBuf,
}

impl FileFlash {
    /// Opens (or creates) a file-backed device at `path`.
    ///
    /// An existing file must match the geometry's size exactly; a missing
    /// file is created fully erased.
    pub fn open(path: impl AsRef<Path>, geometry: FlashGeometry) -> Result<Self, FlashError> {
        let path = path.as_ref().to_path_buf();
        let mut inner = SimFlash::new(geometry);
        match fs::read(&path) {
            Ok(contents) => {
                if contents.len() != geometry.size as usize {
                    return Err(FlashError::Backing);
                }
                // Restore contents bypassing program-semantics checks.
                inner.set_strict_program(false);
                inner.write(0, &contents).map_err(|_| FlashError::Backing)?;
                inner.set_strict_program(true);
                inner.reset_stats();
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                fs::write(&path, vec![0xFF; geometry.size as usize])
                    .map_err(|_| FlashError::Backing)?;
            }
            Err(_) => return Err(FlashError::Backing),
        }
        Ok(Self { inner, path })
    }

    /// Path of the backing file.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn persist(&self) -> Result<(), FlashError> {
        let size = self.inner.geometry().size as usize;
        let mut contents = vec![0u8; size];
        self.inner.read(0, &mut contents)?;
        fs::write(&self.path, contents).map_err(|_| FlashError::Backing)
    }
}

impl FlashDevice for FileFlash {
    fn geometry(&self) -> FlashGeometry {
        self.inner.geometry()
    }

    fn read(&self, addr: u32, buf: &mut [u8]) -> Result<(), FlashError> {
        self.inner.read(addr, buf)
    }

    fn write(&mut self, addr: u32, data: &[u8]) -> Result<(), FlashError> {
        self.inner.write(addr, data)?;
        self.persist()
    }

    fn erase_sector(&mut self, addr: u32) -> Result<(), FlashError> {
        self.inner.erase_sector(addr)?;
        self.persist()
    }

    fn stats(&self) -> FlashStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    fn arm_power_cut_after(&mut self, bytes: u64) {
        self.inner.arm_power_cut_after(bytes);
    }

    fn disarm_power_cut(&mut self) {
        self.inner.disarm_power_cut();
    }

    fn max_sector_wear(&self) -> u32 {
        self.inner.max_sector_wear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_geometry() -> FlashGeometry {
        FlashGeometry {
            size: 4096 * 2,
            sector_size: 4096,
            read_micros_per_byte: 0,
            write_micros_per_byte: 0,
            erase_micros_per_sector: 0,
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "upkit-flash-test-{}-{name}.bin",
            std::process::id()
        ));
        p
    }

    #[test]
    fn contents_survive_reopen() {
        let path = temp_path("reopen");
        let _ = fs::remove_file(&path);
        {
            let mut flash = FileFlash::open(&path, tiny_geometry()).unwrap();
            flash.erase_sector(0).unwrap();
            flash.write(0, b"persisted").unwrap();
        }
        {
            let flash = FileFlash::open(&path, tiny_geometry()).unwrap();
            let mut buf = [0u8; 9];
            flash.read(0, &mut buf).unwrap();
            assert_eq!(&buf, b"persisted");
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn fresh_file_is_erased() {
        let path = temp_path("fresh");
        let _ = fs::remove_file(&path);
        let flash = FileFlash::open(&path, tiny_geometry()).unwrap();
        let mut buf = [0u8; 64];
        flash.read(0, &mut buf).unwrap();
        assert_eq!(buf, [0xFF; 64]);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn size_mismatch_rejected() {
        let path = temp_path("mismatch");
        fs::write(&path, vec![0u8; 100]).unwrap();
        assert_eq!(
            FileFlash::open(&path, tiny_geometry()).map(|_| ()),
            Err(FlashError::Backing)
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn nor_semantics_enforced() {
        let path = temp_path("semantics");
        let _ = fs::remove_file(&path);
        let mut flash = FileFlash::open(&path, tiny_geometry()).unwrap();
        flash.write(16, &[0x0F]).unwrap();
        assert_eq!(flash.write(16, &[0xF0]), Err(FlashError::WriteWithoutErase));
        flash.erase_sector(0).unwrap();
        flash.write(16, &[0xF0]).unwrap();
        let _ = fs::remove_file(&path);
    }
}
