//! Fault-injecting flash proxy for crash-consistency exploration.
//!
//! [`FaultFlash`] wraps any [`FlashDevice`] and operates in one of two
//! modes. In *recording* mode it passes every operation through and
//! appends each mutating op (write, sector erase) to a shared
//! [`OpLog`]; the log's indices are the *boundaries* a model checker can
//! later inject faults at. In *injection* mode it counts mutating ops
//! and, when the planned boundary is reached, fires a fault drawn from
//! the NOR failure model: a clean power cut, a torn write (half the
//! bytes programmed), a torn erase (half the sector reset), or a bit
//! flip left behind by a half-programmed cell. After the fault the
//! device stays dead — every further mutation fails with
//! [`FlashError::PowerLoss`] — until [`FlashDevice::disarm_power_cut`]
//! simulates power restoration. A [`FaultPlan`] can additionally
//! schedule a *second* cut relative to the moment power returns, which
//! models a crash inside the recovery path itself (the "double cut").

use alloc::sync::Arc;
use std::sync::Mutex;

use crate::device::{FlashDevice, FlashError, FlashGeometry, FlashStats};

/// One recorded flash operation, in device order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlashOp {
    /// A program operation covering `len` bytes at `addr`.
    Write {
        /// Start address of the program operation.
        addr: u32,
        /// Number of bytes programmed.
        len: u32,
    },
    /// A sector erase of the sector containing `addr`.
    EraseSector {
        /// Address inside the erased sector.
        addr: u32,
    },
    /// A reboot marker appended by the harness between the propagation
    /// session and the boot phase (not a device operation; never counted
    /// as an injection boundary).
    Reboot,
}

/// Shared, append-only log of recorded operations.
pub type OpLog = Arc<Mutex<Vec<FlashOp>>>;

/// The primary fault fired at a planned boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The operation fails before touching the array.
    CleanCut,
    /// A write programs half of its bytes, then power dies. On an erase
    /// boundary this degenerates to a clean cut.
    TornWrite,
    /// An erase resets half of its sector, then power dies. On a write
    /// boundary this degenerates to a clean cut.
    TornErase,
    /// A clean cut that additionally leaves one cell of the target
    /// address half-programmed: the byte's top bit reads back cleared.
    /// (Clearing a bit is always legal on NOR, so the corruption is
    /// injected through the device's own write path.)
    BitFlip,
}

/// A planned fault: fire `kind` at the `boundary`-th mutating operation
/// (zero-based, counting writes and sector erases), optionally followed
/// by a second clean cut `recovery_cut` mutating ops after power is
/// next restored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Zero-based index of the mutating op the fault fires at.
    pub boundary: u64,
    /// Which fault fires there.
    pub kind: FaultKind,
    /// When `Some(n)`, the first call to `disarm_power_cut` after the
    /// fault (power restored) arms a second clean cut at the `n`-th
    /// mutating op from that moment — a crash inside the recovery path.
    pub recovery_cut: Option<u64>,
}

enum Armed {
    /// Recording or pass-through: no fault planned.
    Idle,
    /// A fault is planned but has not fired yet.
    Pending(FaultPlan),
    /// The fault fired; the device is dead until power is restored.
    Cut { recovery_cut: Option<u64> },
}

/// Shared handle that arms a fault plan on a [`FaultFlash`] already
/// owned elsewhere (typically buried inside a `MemoryLayout`). The plan
/// is adopted before the proxy's next mutating op, replacing any plan
/// still pending — which lets a caller provision a world fault-free,
/// reset the boundary epoch, and only then schedule the fault.
#[derive(Clone, Default)]
pub struct FaultHandle(Arc<Mutex<Option<FaultPlan>>>);

impl FaultHandle {
    /// Arms `plan`; the proxy picks it up at its next mutating op.
    pub fn inject(&self, plan: FaultPlan) {
        *self.0.lock().expect("fault handle poisoned") = Some(plan);
    }
}

/// A [`FlashDevice`] proxy that records operation boundaries or injects
/// one planned fault at such a boundary. See the module docs for the
/// fault model.
pub struct FaultFlash {
    inner: Box<dyn FlashDevice>,
    /// Mutating ops seen so far (writes + sector erases; reads excluded).
    ops: u64,
    log: Option<OpLog>,
    armed: Armed,
    inject: FaultHandle,
}

impl FaultFlash {
    /// Wraps `inner` in recording mode; returns the proxy and the shared
    /// op log it appends to.
    #[must_use]
    pub fn recording(inner: Box<dyn FlashDevice>) -> (Self, OpLog) {
        let log: OpLog = Arc::new(Mutex::new(Vec::new()));
        (
            Self {
                inner,
                ops: 0,
                log: Some(Arc::clone(&log)),
                armed: Armed::Idle,
                inject: FaultHandle::default(),
            },
            log,
        )
    }

    /// Wraps `inner` in injection mode with one planned fault.
    #[must_use]
    pub fn with_fault(inner: Box<dyn FlashDevice>, plan: FaultPlan) -> Self {
        Self {
            inner,
            ops: 0,
            log: None,
            armed: Armed::Pending(plan),
            inject: FaultHandle::default(),
        }
    }

    /// Wraps `inner` idle; the returned [`FaultHandle`] arms a plan
    /// later, from outside whatever structure ends up owning the proxy.
    #[must_use]
    pub fn injectable(inner: Box<dyn FlashDevice>) -> (Self, FaultHandle) {
        let handle = FaultHandle::default();
        (
            Self {
                inner,
                ops: 0,
                log: None,
                armed: Armed::Idle,
                inject: handle.clone(),
            },
            handle,
        )
    }

    /// Adopts an externally injected plan, if one is waiting.
    fn adopt_injection(&mut self) {
        if let Some(plan) = self.inject.0.lock().expect("fault handle poisoned").take() {
            self.armed = Armed::Pending(plan);
        }
    }

    /// Mutating operations (writes + sector erases) observed so far.
    #[must_use]
    pub fn ops_seen(&self) -> u64 {
        self.ops
    }

    /// Whether the planned fault has fired and power has not been
    /// restored since.
    #[must_use]
    pub fn is_cut(&self) -> bool {
        matches!(self.armed, Armed::Cut { .. })
    }

    /// Counts the op and reports the plan if this op is its boundary.
    fn take_boundary(&mut self) -> Option<FaultPlan> {
        let index = self.ops;
        self.ops += 1;
        match self.armed {
            Armed::Pending(plan) if plan.boundary == index => Some(plan),
            _ => None,
        }
    }

    /// Leaves the byte at `addr` looking half-programmed: its top bit
    /// reads back as 0. Injected through the inner device's own write
    /// path, which only ever clears bits — legal NOR behaviour. When the
    /// bit is already 0 the flip is a deterministic no-op.
    fn flip_bit(&mut self, addr: u32) {
        let mut byte = [0u8; 1];
        if self.inner.read(addr, &mut byte).is_ok() {
            let _ = self.inner.write(addr, &[byte[0] & 0x7F]);
        }
    }
}

impl FlashDevice for FaultFlash {
    fn geometry(&self) -> FlashGeometry {
        self.inner.geometry()
    }

    fn read(&self, addr: u32, buf: &mut [u8]) -> Result<(), FlashError> {
        // Reads pass through even after a cut, matching the byte-budget
        // model: the simulated MCU reboots and reads whatever the array
        // holds. Post-cut corruption is persisted at injection time.
        self.inner.read(addr, buf)
    }

    fn write(&mut self, addr: u32, data: &[u8]) -> Result<(), FlashError> {
        self.adopt_injection();
        if self.is_cut() {
            return Err(FlashError::PowerLoss);
        }
        if let Some(plan) = self.take_boundary() {
            let torn_budget = match plan.kind {
                FaultKind::TornWrite => (data.len() / 2) as u64,
                FaultKind::CleanCut | FaultKind::TornErase => 0,
                FaultKind::BitFlip => {
                    self.flip_bit(addr);
                    0
                }
            };
            self.inner.arm_power_cut_after(torn_budget);
            let result = self.inner.write(addr, data);
            self.inner.disarm_power_cut();
            self.armed = Armed::Cut {
                recovery_cut: plan.recovery_cut,
            };
            // A zero-length write survives a zero budget; the cut still
            // happened, so the caller sees power loss either way.
            return Err(result.err().unwrap_or(FlashError::PowerLoss));
        }
        if let Some(log) = &self.log {
            log.lock().expect("op log poisoned").push(FlashOp::Write {
                addr,
                len: data.len() as u32,
            });
        }
        self.inner.write(addr, data)
    }

    fn erase_sector(&mut self, addr: u32) -> Result<(), FlashError> {
        self.adopt_injection();
        if self.is_cut() {
            return Err(FlashError::PowerLoss);
        }
        if let Some(plan) = self.take_boundary() {
            let torn_budget = match plan.kind {
                FaultKind::TornErase => u64::from(self.inner.geometry().sector_size / 2),
                FaultKind::CleanCut | FaultKind::TornWrite => 0,
                FaultKind::BitFlip => {
                    self.flip_bit(addr);
                    0
                }
            };
            self.inner.arm_power_cut_after(torn_budget);
            let result = self.inner.erase_sector(addr);
            self.inner.disarm_power_cut();
            self.armed = Armed::Cut {
                recovery_cut: plan.recovery_cut,
            };
            return Err(result.err().unwrap_or(FlashError::PowerLoss));
        }
        if let Some(log) = &self.log {
            log.lock()
                .expect("op log poisoned")
                .push(FlashOp::EraseSector { addr });
        }
        self.inner.erase_sector(addr)
    }

    fn stats(&self) -> FlashStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        // The boundary epoch matches the stats epoch: a scenario that
        // resets its counters after provisioning (as `update_world`
        // does) thereby indexes boundaries over update-time ops only —
        // a pending plan's boundary never lands inside provisioning,
        // and a recording starts clean.
        self.ops = 0;
        if let Some(log) = &self.log {
            log.lock().expect("op log poisoned").clear();
        }
        self.inner.reset_stats();
    }

    fn arm_power_cut_after(&mut self, bytes: u64) {
        self.inner.arm_power_cut_after(bytes);
    }

    fn disarm_power_cut(&mut self) {
        self.inner.disarm_power_cut();
        self.armed = match core::mem::replace(&mut self.armed, Armed::Idle) {
            // Power restored after the fault: either the plan's second
            // cut arms now (relative to this moment's op count), or the
            // device is healthy again.
            Armed::Cut {
                recovery_cut: Some(after),
            } => Armed::Pending(FaultPlan {
                boundary: self.ops + after,
                kind: FaultKind::CleanCut,
                recovery_cut: None,
            }),
            Armed::Cut { recovery_cut: None } => Armed::Idle,
            // A pending fault survives reboots: its boundary has not
            // been reached yet.
            other => other,
        };
    }

    fn max_sector_wear(&self) -> u32 {
        self.inner.max_sector_wear()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimFlash;

    fn sim() -> SimFlash {
        SimFlash::new(FlashGeometry {
            size: 4096 * 4,
            sector_size: 4096,
            read_micros_per_byte: 0,
            write_micros_per_byte: 0,
            erase_micros_per_sector: 0,
        })
    }

    fn plan(boundary: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            boundary,
            kind,
            recovery_cut: None,
        }
    }

    #[test]
    fn recording_logs_every_mutating_op_and_no_reads() {
        let (mut flash, log) = FaultFlash::recording(Box::new(sim()));
        flash.erase_sector(0).unwrap();
        flash.write(16, &[0xA0; 8]).unwrap();
        let mut buf = [0u8; 8];
        flash.read(16, &mut buf).unwrap();
        flash.erase_sector(4096).unwrap();
        assert_eq!(
            log.lock().unwrap().as_slice(),
            &[
                FlashOp::EraseSector { addr: 0 },
                FlashOp::Write { addr: 16, len: 8 },
                FlashOp::EraseSector { addr: 4096 },
            ]
        );
        assert_eq!(flash.ops_seen(), 3);
    }

    #[test]
    fn clean_cut_fires_at_the_boundary_and_kills_later_ops() {
        let mut flash = FaultFlash::with_fault(Box::new(sim()), plan(1, FaultKind::CleanCut));
        flash.erase_sector(0).unwrap(); // op 0
        assert_eq!(flash.write(0, &[0; 8]), Err(FlashError::PowerLoss)); // op 1: cut
        assert!(flash.is_cut());
        // Nothing landed, and the device stays dead.
        let mut buf = [0xAAu8; 8];
        flash.read(0, &mut buf).unwrap();
        assert_eq!(buf, [0xFF; 8]);
        assert_eq!(flash.erase_sector(0), Err(FlashError::PowerLoss));
        // Power restored: fully healthy again.
        flash.disarm_power_cut();
        flash.write(0, &[0; 8]).unwrap();
    }

    #[test]
    fn torn_write_lands_exactly_half_the_bytes() {
        let mut flash = FaultFlash::with_fault(Box::new(sim()), plan(1, FaultKind::TornWrite));
        flash.erase_sector(0).unwrap();
        assert_eq!(flash.write(0, &[0x11; 10]), Err(FlashError::PowerLoss));
        flash.disarm_power_cut();
        let mut buf = [0u8; 10];
        flash.read(0, &mut buf).unwrap();
        assert_eq!(&buf[..5], &[0x11; 5], "first half programmed");
        assert_eq!(&buf[5..], &[0xFF; 5], "second half untouched");
    }

    #[test]
    fn torn_erase_resets_half_the_sector() {
        let mut flash = FaultFlash::with_fault(Box::new(sim()), plan(2, FaultKind::TornErase));
        flash.erase_sector(0).unwrap(); // op 0
        flash.write(0, &[0x00; 4096]).unwrap(); // op 1
        assert_eq!(flash.erase_sector(0), Err(FlashError::PowerLoss)); // op 2: torn
        flash.disarm_power_cut();
        let mut buf = vec![0u8; 4096];
        flash.read(0, &mut buf).unwrap();
        assert!(buf[..2048].iter().all(|&b| b == 0xFF), "front half erased");
        assert!(buf[2048..].iter().all(|&b| b == 0x00), "back half stale");
        assert_eq!(flash.max_sector_wear(), 1, "the torn erase earns no wear");
    }

    #[test]
    fn bit_flip_clears_the_top_bit_of_the_target_byte() {
        let mut flash = FaultFlash::with_fault(Box::new(sim()), plan(2, FaultKind::BitFlip));
        flash.erase_sector(0).unwrap(); // op 0
        flash.write(0, &[0xFF; 4]).unwrap(); // op 1 (no-op program, all ones)
        assert_eq!(flash.write(0, &[0xF0; 4]), Err(FlashError::PowerLoss)); // op 2
        flash.disarm_power_cut();
        let mut buf = [0u8; 4];
        flash.read(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0x7F, "half-programmed cell reads back flipped");
        assert_eq!(&buf[1..], &[0xFF; 3], "only the target byte corrupted");
    }

    #[test]
    fn double_cut_arms_a_second_cut_when_power_returns() {
        let mut flash = FaultFlash::with_fault(
            Box::new(sim()),
            FaultPlan {
                boundary: 1,
                kind: FaultKind::CleanCut,
                recovery_cut: Some(1),
            },
        );
        flash.erase_sector(0).unwrap(); // op 0
        assert_eq!(flash.write(0, &[0; 4]), Err(FlashError::PowerLoss)); // op 1: first cut
        flash.disarm_power_cut(); // power restored; second cut armed 1 op out
        flash.write(0, &[0; 4]).unwrap(); // recovery op survives
        assert_eq!(flash.write(4, &[0; 4]), Err(FlashError::PowerLoss)); // second cut
        flash.disarm_power_cut(); // second restore: healthy for good
        flash.write(4, &[0; 4]).unwrap();
        assert!(!flash.is_cut());
    }

    #[test]
    fn pending_fault_survives_a_disarm_before_its_boundary() {
        let mut flash = FaultFlash::with_fault(Box::new(sim()), plan(2, FaultKind::CleanCut));
        flash.erase_sector(0).unwrap(); // op 0
        flash.disarm_power_cut(); // a reboot before the boundary changes nothing
        flash.write(0, &[0; 4]).unwrap(); // op 1
        assert_eq!(flash.write(4, &[0; 4]), Err(FlashError::PowerLoss)); // op 2
    }

    #[test]
    fn reset_stats_starts_a_fresh_boundary_epoch() {
        // Provisioning-style traffic before reset_stats must count
        // toward neither the recorded log nor a plan's boundary index.
        let (mut flash, log) = FaultFlash::recording(Box::new(sim()));
        flash.erase_sector(0).unwrap();
        flash.write(0, &[0; 8]).unwrap();
        assert_eq!(flash.ops_seen(), 2);
        flash.reset_stats();
        assert_eq!(flash.ops_seen(), 0);
        assert!(log.lock().unwrap().is_empty());
        flash.write(8, &[0; 4]).unwrap();
        assert_eq!(log.lock().unwrap().len(), 1);

        // An injected plan after the reset indexes from the new epoch:
        // boundary 0 means "the first post-provisioning op", not the
        // first op ever.
        let (mut flash, handle) = FaultFlash::injectable(Box::new(sim()));
        flash.erase_sector(0).unwrap(); // provisioning traffic
        flash.reset_stats();
        handle.inject(plan(0, FaultKind::CleanCut));
        assert_eq!(flash.write(0, &[0; 4]), Err(FlashError::PowerLoss)); // op 0 of the new epoch
    }
}
