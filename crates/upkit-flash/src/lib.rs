//! Flash-memory substrate for the UpKit reproduction.
//!
//! UpKit's *memory module* organizes persistent storage into slots and
//! reaches the hardware through a narrow *memory interface* modeled on
//! POSIX IO. The paper runs on real NOR flash (nRF52840, CC2650, CC2538
//! internal flash plus external SPI NOR); this crate substitutes a
//! simulator that enforces the same invariants — sector erase,
//! bit-clearing writes, wear — so every byte the update agent, pipeline,
//! and bootloader move passes through realistic flash semantics.
//!
//! * [`device`] — the [`FlashDevice`] trait, geometry, and stats.
//! * [`sim`] — [`SimFlash`], the in-memory NOR simulator with power-loss
//!   injection.
//! * [`fault`] — [`FaultFlash`], a recording/fault-injecting proxy over
//!   any device, the substrate of the `upkit-chaos` explorer.
//! * [`mod@file`] — [`FileFlash`], file-backed slots (the paper's "assign a
//!   Linux file to each slot" testing aid).
//! * [`layout`] — slot tables and the Fig. 6 configurations
//!   ([`configuration_a`], [`configuration_b`]).
//! * [`io`] — POSIX-like slot IO with `READ_ONLY`, `WRITE_ALL`, and
//!   `SEQUENTIAL_REWRITE` open modes.
//!
//! # `no_std` support
//!
//! With `--no-default-features` the crate builds as `no_std + alloc` and
//! keeps everything a device needs: the [`FlashDevice`] trait, the
//! simulator, slot layouts, and slot IO. The host-only test aids —
//! [`FaultFlash`] (`std::sync`) and [`FileFlash`] (`std::fs`) — need the
//! `std` feature.

#![cfg_attr(not(feature = "std"), no_std)]
#![warn(missing_docs)]
#![warn(clippy::std_instead_of_core)]
#![warn(clippy::std_instead_of_alloc)]
#![warn(clippy::alloc_instead_of_core)]

extern crate alloc;

pub mod device;
#[cfg(feature = "std")]
pub mod fault;
#[cfg(feature = "std")]
pub mod file;
pub mod io;
pub mod layout;
pub mod sim;

pub use device::{FlashDevice, FlashError, FlashGeometry, FlashStats};
#[cfg(feature = "std")]
pub use fault::{FaultFlash, FaultHandle, FaultKind, FaultPlan, FlashOp, OpLog};
#[cfg(feature = "std")]
pub use file::FileFlash;
pub use io::{OpenMode, SlotHandle};
pub use layout::{
    configuration_a, configuration_b, configuration_multi, standard, LayoutError, MemoryLayout,
    SlotId, SlotKind, SlotSpec,
};
pub use sim::SimFlash;
