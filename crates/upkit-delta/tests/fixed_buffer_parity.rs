//! Property tests: the allocation-free `_into` decoders are byte-identical
//! to the Vec-returning decoders on every format — streaming bsdiff,
//! block-diff, LZSS, and framed containers — and agree with them on budget
//! rejection (a buffer one byte shorter than the output must be refused
//! with the same `BudgetExceeded` error the budgeted Vec path returns).

use proptest::prelude::*;
use upkit_compress::{compress, decompress, decompress_into, decompress_with_budget, LzssError};
use upkit_delta::blockdiff;
use upkit_delta::{
    diff, framed_diff, patch, patch_framed, patch_framed_into, patch_into, FramedDiffOptions,
    FramedError, PatchError,
};

/// Related old/new image pairs: a mutated copy exercises copy-heavy
/// patches, an unrelated pair exercises literal-heavy ones.
fn image_pairs() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    let mutated = (
        proptest::collection::vec(any::<u8>(), 0..2048),
        any::<u64>(),
    )
        .prop_map(|(old, seed)| {
            let mut new = old.clone();
            let mut state = seed | 1;
            for _ in 0..(seed % 24) {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if new.is_empty() {
                    new.push(state as u8);
                } else {
                    let idx = (state as usize) % new.len();
                    match state % 3 {
                        0 => new[idx] ^= (state >> 8) as u8,
                        1 => new.insert(idx, (state >> 16) as u8),
                        _ => {
                            new.remove(idx);
                        }
                    }
                }
            }
            (old, new)
        });
    let unrelated = (
        proptest::collection::vec(any::<u8>(), 0..512),
        proptest::collection::vec(any::<u8>(), 0..512),
    );
    prop_oneof![mutated, unrelated]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bsdiff_patch_into_matches_vec_path(pair in image_pairs()) {
        let (old, new) = pair;
        let patch_bytes = diff(&old, &new);
        let via_vec = patch(&old, &patch_bytes).expect("vec path applies");
        prop_assert_eq!(&via_vec, &new);

        let mut fixed = vec![0u8; new.len()];
        let written = patch_into(&old, &patch_bytes, &mut fixed).expect("fixed path applies");
        prop_assert_eq!(written, new.len());
        prop_assert_eq!(&fixed[..written], &new[..]);

        // A buffer one byte short is a budget rejection, same as the
        // budgeted Vec path.
        if !new.is_empty() {
            let mut short = vec![0u8; new.len() - 1];
            prop_assert_eq!(
                patch_into(&old, &patch_bytes, &mut short),
                Err(PatchError::BudgetExceeded)
            );
        }
    }

    #[test]
    fn blockdiff_patch_into_matches_vec_path(pair in image_pairs()) {
        let (old, new) = pair;
        let delta = blockdiff::diff(&old, &new);
        let via_vec = blockdiff::patch(&old, &delta).expect("vec path applies");
        prop_assert_eq!(&via_vec, &new);

        let mut fixed = vec![0u8; new.len()];
        let written = blockdiff::patch_into(&old, &delta, &mut fixed).expect("fixed path applies");
        prop_assert_eq!(written, new.len());
        prop_assert_eq!(&fixed[..written], &new[..]);

        if !new.is_empty() {
            let mut short = vec![0u8; new.len() - 1];
            prop_assert_eq!(
                blockdiff::patch_into(&old, &delta, &mut short),
                Err(blockdiff::BlockDiffError::BudgetExceeded)
            );
        }
    }

    #[test]
    fn lzss_decompress_into_matches_vec_path(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let stream = compress(&data, upkit_compress::Params::default());
        let via_vec = decompress(&stream).expect("vec path decompresses");
        prop_assert_eq!(&via_vec, &data);

        let mut fixed = vec![0u8; data.len()];
        let written = decompress_into(&stream, &mut fixed).expect("fixed path decompresses");
        prop_assert_eq!(written, data.len());
        prop_assert_eq!(&fixed[..written], &data[..]);

        if !data.is_empty() {
            let mut short = vec![0u8; data.len() - 1];
            prop_assert_eq!(
                decompress_into(&stream, &mut short),
                Err(LzssError::BudgetExceeded)
            );
            prop_assert_eq!(
                decompress_with_budget(&stream, data.len() as u64 - 1),
                Err(LzssError::BudgetExceeded)
            );
        }
    }

    #[test]
    fn framed_patch_into_matches_vec_path(
        pair in image_pairs(),
        window_len in 1usize..512,
        compress_bodies in any::<bool>(),
    ) {
        let (old, new) = pair;
        let options = FramedDiffOptions {
            window_len,
            threads: 1,
            lzss: compress_bodies.then(upkit_compress::Params::default),
        };
        let container = framed_diff(&old, &new, &options);
        let via_vec = patch_framed(&old, &container).expect("vec path applies");
        prop_assert_eq!(&via_vec, &new);

        let mut fixed = vec![0u8; new.len()];
        let written =
            patch_framed_into(&old, &container, &mut fixed).expect("fixed path applies");
        prop_assert_eq!(written, new.len());
        prop_assert_eq!(&fixed[..written], &new[..]);

        if !new.is_empty() {
            let mut short = vec![0u8; new.len() - 1];
            prop_assert_eq!(
                patch_framed_into(&old, &container, &mut short),
                Err(FramedError::BudgetExceeded)
            );
        }
    }
}
