//! A deterministic index-slotted worker pool.
//!
//! Server-side fan-out — window diffs within one patch, update preparation
//! across a token batch — shares one scheduling shape: a slice of
//! independent jobs whose results must come back *in input order* no matter
//! which worker finishes first. [`parallel_map`] runs a pure-per-item
//! closure over a bounded job queue and writes each result into the slot
//! matching its input index, so output is a deterministic function of the
//! inputs alone. `upkit-core`'s `ParallelGenerator` is built on this same
//! pool.

use alloc::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A fixed-capacity multi-producer/multi-consumer queue of job indices.
///
/// The bound keeps the producer from racing arbitrarily far ahead of the
/// workers when batches are huge: `push` blocks once `capacity` jobs are
/// waiting, `pop` blocks until a job or close arrives.
struct JobQueue {
    state: Mutex<JobQueueState>,
    capacity: usize,
    not_full: Condvar,
    not_empty: Condvar,
}

struct JobQueueState {
    jobs: VecDeque<usize>,
    closed: bool,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(JobQueueState {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            capacity,
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    fn push(&self, job: usize) {
        let mut state = self.state.lock().expect("queue lock");
        while state.jobs.len() >= self.capacity {
            state = self.not_full.wait(state).expect("queue lock");
        }
        state.jobs.push_back(job);
        drop(state);
        self.not_empty.notify_one();
    }

    /// Returns `None` once the queue is closed and drained.
    fn pop(&self) -> Option<usize> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock");
        }
    }

    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
    }
}

/// Maps `f` over `items` on up to `threads` scoped workers, returning
/// results in input order.
///
/// `result[i] == f(i, &items[i])` exactly as if the map ran sequentially;
/// worker scheduling cannot reorder or interleave results because each job
/// writes only its own slot. With `threads <= 1` or a single item the map
/// runs inline with no thread or queue overhead, so callers can use one
/// code path for both configurations.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    if threads <= 1 || items.len() == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    // One result slot per item: workers write disjoint indices, so
    // ordering is fixed by the input no matter who finishes first.
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let queue = JobQueue::new(threads * 2);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(items.len()) {
            scope.spawn(|_| {
                while let Some(index) = queue.pop() {
                    let result = f(index, &items[index]);
                    *results[index].lock().expect("result lock") = Some(result);
                }
            });
        }
        for index in 0..items.len() {
            queue.push(index);
        }
        queue.close();
    })
    .expect("pool workers do not panic");

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result lock")
                .expect("every job ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1usize, 2, 4, 9] {
            let out = parallel_map(&items, threads, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(
                out,
                (0..100).map(|x| x * 3).collect::<Vec<_>>(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let items: Vec<usize> = (0..57).collect();
        let calls = AtomicUsize::new(0);
        let out = parallel_map(&items, 5, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 57);
        assert_eq!(out, items);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [7u8, 8];
        let out = parallel_map(&items, 64, |_, &x| u32::from(x) + 1);
        assert_eq!(out, vec![8, 9]);
    }
}
