//! Chunked (windowed) delta generation for the framed container.
//!
//! The target image is split into contiguous bounded windows; each window
//! is diffed against the *full* old image, so every window job reuses the
//! same shared suffix array and a window can match old bytes anywhere —
//! code moves across window boundaries still diff well. Window jobs are
//! pure functions of `(old, window)` and run over the deterministic
//! index-slotted pool ([`crate::pool::parallel_map`]), so the container is
//! byte-identical at any thread count; tests pin `framed_diff` output at 1
//! and 8 threads against each other and against the sequential Raw path.

use upkit_compress::{compress, Params as LzssParams};

use crate::framed::{COMP_LZSS, COMP_NONE, FRAMED_MAGIC};
use crate::suffix::SuffixArray;

/// Default window length for chunked diff generation.
///
/// Large enough that per-window control overhead is negligible (a window
/// carries its own 12-byte Raw header plus a 13-byte directory entry),
/// small enough that a 256 KiB image fans out over 4 windows.
pub const DEFAULT_WINDOW_LEN: usize = 64 * 1024;

/// Configuration for [`framed_diff`] / [`crate::DeltaContext::framed_diff`].
#[derive(Clone, Copy, Debug)]
pub struct FramedDiffOptions {
    /// Bytes of new image per window (min 1; last window may be shorter).
    pub window_len: usize,
    /// Worker threads diffing windows concurrently (min 1). Output bytes
    /// do not depend on this.
    pub threads: usize,
    /// Per-window LZSS compression; `None` stores every body raw. A
    /// compressed body is only used when it is actually smaller.
    pub lzss: Option<LzssParams>,
}

impl Default for FramedDiffOptions {
    fn default() -> Self {
        Self {
            window_len: DEFAULT_WINDOW_LEN,
            threads: 1,
            lzss: Some(LzssParams::default()),
        }
    }
}

impl FramedDiffOptions {
    /// Sets the worker-thread count (builder style).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the window length (builder style).
    #[must_use]
    pub fn with_window_len(mut self, window_len: usize) -> Self {
        self.window_len = window_len.max(1);
        self
    }
}

/// Computes a framed patch transforming `old` into `new`, building a fresh
/// suffix array; use [`crate::DeltaContext::framed_diff`] to amortize the
/// array across several diffs against the same old image.
#[must_use]
pub fn framed_diff(old: &[u8], new: &[u8], options: &FramedDiffOptions) -> Vec<u8> {
    framed_diff_with_suffix_array(&SuffixArray::build(old), old, new, options)
}

pub(crate) fn framed_diff_with_suffix_array(
    sa: &SuffixArray,
    old: &[u8],
    new: &[u8],
    options: &FramedDiffOptions,
) -> Vec<u8> {
    assert!(
        u32::try_from(old.len()).is_ok() && u32::try_from(new.len()).is_ok(),
        "framed container addresses images with 32-bit lengths"
    );
    let window_len = options.window_len.max(1);
    let windows: Vec<&[u8]> = new.chunks(window_len).collect();

    // Each body is a complete Raw patch for its window against the full
    // old image: a pure function of (old, window), so the fan-out below
    // cannot change bytes, only wall time.
    let bodies: Vec<(u8, Vec<u8>)> =
        crate::pool::parallel_map(&windows, options.threads.max(1), |_, window| {
            let raw = crate::diff_with_suffix_array(sa, old, window);
            if let Some(params) = options.lzss {
                let packed = compress(&raw, params);
                if packed.len() < raw.len() {
                    return (COMP_LZSS, packed);
                }
            }
            (COMP_NONE, raw)
        });

    let directory_len = windows.len() * crate::framed::WINDOW_HEADER_LEN;
    let bodies_len: usize = bodies.iter().map(|(_, b)| b.len()).sum();
    let mut out = Vec::with_capacity(crate::framed::FRAMED_HEADER_LEN + directory_len + bodies_len);
    out.extend_from_slice(&FRAMED_MAGIC);
    out.extend_from_slice(&(old.len() as u32).to_le_bytes());
    out.extend_from_slice(&(new.len() as u32).to_le_bytes());
    out.extend_from_slice(&(windows.len() as u32).to_le_bytes());
    let mut offset = 0u32;
    for (window, (comp, body)) in windows.iter().zip(bodies.iter()) {
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(window.len() as u32).to_le_bytes());
        out.push(*comp);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        offset += window.len() as u32;
    }
    for (_, body) in &bodies {
        out.extend_from_slice(body);
    }
    out
}
