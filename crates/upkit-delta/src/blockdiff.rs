//! Block-based delta baseline (rsync/xdelta-style).
//!
//! UpKit adopts `bsdiff` + LZSS following Stolikj et al.'s comparison of
//! incremental-update algorithms. To make that design choice reproducible
//! rather than asserted, this module implements the main alternative
//! family: rsync-style block matching. The encoder hashes every aligned
//! block of the old image and scans the new image (sliding per byte), and
//! emits either `Copy { old block }` or literal data. Block deltas are much
//! cheaper to compute (no suffix array) but have no byte-wise diff: a
//! single changed byte turns its whole block into literals, so scattered
//! small edits — exactly the firmware-update workload — degenerate toward
//! retransmitting the image. The `delta_algorithms` experiment quantifies
//! this against bsdiff.

#[cfg(feature = "std")]
use std::collections::HashMap;

use alloc::vec::Vec;

use upkit_compress::{ByteSink, FixedBuf};

/// Block size used by the encoder (a flash-friendly 256 bytes).
pub const BLOCK_SIZE: usize = 256;

/// Magic bytes identifying a block-diff stream.
pub const MAGIC: [u8; 4] = *b"BLK1";

/// Errors from applying a block diff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BlockDiffError {
    /// Missing magic bytes.
    BadMagic,
    /// Input ended inside an instruction.
    Truncated,
    /// A copy referenced a block outside the old image.
    OutOfBounds,
    /// The header declared an output longer than the decode budget.
    BudgetExceeded,
}

impl core::fmt::Display for BlockDiffError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadMagic => f.write_str("missing block-diff magic"),
            Self::Truncated => f.write_str("block-diff stream truncated"),
            Self::OutOfBounds => f.write_str("block-diff copy out of bounds"),
            Self::BudgetExceeded => f.write_str("block-diff declared output exceeds budget"),
        }
    }
}

impl core::error::Error for BlockDiffError {}

#[cfg(feature = "std")]
fn block_hash(block: &[u8]) -> u64 {
    // FNV-1a, sufficient for matching in a trusted pipeline (integrity is
    // the verifier's job; equality is re-checked before emitting a copy).
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in block {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Computes a block diff: `magic ‖ new_len u32 ‖ instructions`, where each
/// instruction is `0x01 ‖ block_index u32` (copy [`BLOCK_SIZE`] bytes from
/// the old image) or `0x00 ‖ len u16 ‖ literal bytes`.
#[cfg(feature = "std")]
#[must_use]
pub fn diff(old: &[u8], new: &[u8]) -> Vec<u8> {
    let mut index: HashMap<u64, Vec<u32>> = HashMap::new();
    for (i, block) in old.chunks_exact(BLOCK_SIZE).enumerate() {
        index.entry(block_hash(block)).or_default().push(i as u32);
    }

    let mut out = Vec::with_capacity(new.len() / 8 + 16);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(new.len() as u32).to_le_bytes());

    let mut literal: Vec<u8> = Vec::new();
    let flush_literal = |out: &mut Vec<u8>, literal: &mut Vec<u8>| {
        for chunk in literal.chunks(u16::MAX as usize) {
            out.push(0x00);
            out.extend_from_slice(&(chunk.len() as u16).to_le_bytes());
            out.extend_from_slice(chunk);
        }
        literal.clear();
    };

    let mut pos = 0usize;
    while pos + BLOCK_SIZE <= new.len() {
        let candidate = &new[pos..pos + BLOCK_SIZE];
        let matched = index
            .get(&block_hash(candidate))
            .and_then(|blocks| {
                blocks.iter().find(|&&b| {
                    let start = b as usize * BLOCK_SIZE;
                    &old[start..start + BLOCK_SIZE] == candidate
                })
            })
            .copied();
        if let Some(block) = matched {
            flush_literal(&mut out, &mut literal);
            out.push(0x01);
            out.extend_from_slice(&block.to_le_bytes());
            pos += BLOCK_SIZE;
        } else {
            literal.push(new[pos]);
            pos += 1;
        }
    }
    literal.extend_from_slice(&new[pos..]);
    flush_literal(&mut out, &mut literal);
    out
}

/// Applies a block diff to `old`.
///
/// The output allocation is bounded by the delta's own size, not the
/// attacker-controlled header: a declared length the instruction stream
/// cannot actually produce fails with [`BlockDiffError::Truncated`] without
/// ever reserving that much memory. Callers with a known output bound (a
/// flash slot) should use [`patch_with_budget`] to reject oversized
/// declarations up front as [`BlockDiffError::BudgetExceeded`].
pub fn patch(old: &[u8], delta: &[u8]) -> Result<Vec<u8>, BlockDiffError> {
    patch_with_budget(old, delta, usize::MAX)
}

/// Applies a block diff to `old`, rejecting any delta whose header declares
/// an output longer than `budget` bytes.
pub fn patch_with_budget(
    old: &[u8],
    delta: &[u8],
    budget: usize,
) -> Result<Vec<u8>, BlockDiffError> {
    let new_len = parse_header(delta, budget)?;
    // Never pre-allocate from the attacker-controlled header alone: each
    // output byte costs at least 1/BLOCK_SIZE delta bytes, so the stream
    // length bounds what a well-formed delta can produce.
    let producible = delta
        .len()
        .saturating_sub(8)
        .saturating_mul(BLOCK_SIZE)
        .min(new_len);
    let mut out = Vec::with_capacity(producible);
    apply_instructions(old, delta, new_len, &mut out)?;
    Ok(out)
}

/// Applies a block diff to `old` into a caller-provided buffer, without
/// heap allocation; returns the number of bytes written.
///
/// The buffer length doubles as the decode budget: a delta declaring more
/// output than `out` can hold is rejected with
/// [`BlockDiffError::BudgetExceeded`] at the header.
///
/// # Errors
///
/// Same as [`patch_with_budget`] with `budget == out.len()`.
pub fn patch_into(old: &[u8], delta: &[u8], out: &mut [u8]) -> Result<usize, BlockDiffError> {
    let new_len = parse_header(delta, out.len())?;
    let mut buf = FixedBuf::new(out);
    apply_instructions(old, delta, new_len, &mut buf)?;
    debug_assert!(!buf.overflowed(), "budget bounds every write");
    Ok(buf.len())
}

fn parse_header(delta: &[u8], budget: usize) -> Result<usize, BlockDiffError> {
    if delta.len() < 8 || delta[..4] != MAGIC {
        return Err(BlockDiffError::BadMagic);
    }
    let new_len = u32::from_le_bytes(delta[4..8].try_into().expect("4 bytes")) as usize;
    if new_len > budget {
        return Err(BlockDiffError::BudgetExceeded);
    }
    Ok(new_len)
}

/// Decodes the instruction stream into `out`, checking each instruction's
/// output against `new_len` *before* emitting it, so a sink sized to the
/// (budget-checked) declared length can never overflow.
fn apply_instructions<S: ByteSink + ?Sized>(
    old: &[u8],
    delta: &[u8],
    new_len: usize,
    out: &mut S,
) -> Result<(), BlockDiffError> {
    let mut produced = 0usize;
    let mut pos = 8usize;
    while pos < delta.len() {
        match delta[pos] {
            0x01 => {
                let bytes = delta
                    .get(pos + 1..pos + 5)
                    .ok_or(BlockDiffError::Truncated)?;
                let block = u32::from_le_bytes(bytes.try_into().expect("4 bytes")) as usize;
                let start = block
                    .checked_mul(BLOCK_SIZE)
                    .ok_or(BlockDiffError::OutOfBounds)?;
                let source = old
                    .get(start..start + BLOCK_SIZE)
                    .ok_or(BlockDiffError::OutOfBounds)?;
                if produced + BLOCK_SIZE > new_len {
                    return Err(BlockDiffError::Truncated);
                }
                out.put_slice(source);
                produced += BLOCK_SIZE;
                pos += 5;
            }
            0x00 => {
                let bytes = delta
                    .get(pos + 1..pos + 3)
                    .ok_or(BlockDiffError::Truncated)?;
                let len = u16::from_le_bytes(bytes.try_into().expect("2 bytes")) as usize;
                let literal = delta
                    .get(pos + 3..pos + 3 + len)
                    .ok_or(BlockDiffError::Truncated)?;
                if produced + len > new_len {
                    return Err(BlockDiffError::Truncated);
                }
                out.put_slice(literal);
                produced += len;
                pos += 3 + len;
            }
            _ => return Err(BlockDiffError::Truncated),
        }
    }
    if produced != new_len {
        return Err(BlockDiffError::Truncated);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u32, len: usize) -> Vec<u8> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (state >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn identical_images_are_all_copies() {
        let data = lcg(1, BLOCK_SIZE * 16);
        let delta = diff(&data, &data);
        assert_eq!(patch(&data, &delta).unwrap(), data);
        // 16 copy instructions of 5 bytes + 8-byte header.
        assert_eq!(delta.len(), 8 + 16 * 5);
    }

    #[test]
    fn round_trips_arbitrary_pairs() {
        for (a, b) in [(2u32, 3u32), (4, 5), (6, 7)] {
            let old = lcg(a, 3000);
            let new = lcg(b, 2500);
            let delta = diff(&old, &new);
            assert_eq!(patch(&old, &delta).unwrap(), new);
        }
    }

    #[test]
    fn aligned_change_stays_cheap() {
        let old = lcg(8, BLOCK_SIZE * 20);
        let mut new = old.clone();
        // Overwrite one whole block in place: only that block turns literal.
        new[BLOCK_SIZE * 5..BLOCK_SIZE * 6].copy_from_slice(&lcg(9, BLOCK_SIZE));
        let delta = diff(&old, &new);
        assert_eq!(patch(&old, &delta).unwrap(), new);
        assert!(delta.len() < BLOCK_SIZE + 8 + 20 * 5 + 3);
    }

    #[test]
    fn insertion_is_handled_by_the_sliding_matcher() {
        // Unlike naive aligned block diffs, the rsync-style scan recovers
        // after a one-byte insertion: only the straddling block turns
        // literal.
        let old = lcg(10, BLOCK_SIZE * 20);
        let mut new = old[..BLOCK_SIZE].to_vec();
        new.push(0xEE);
        new.extend_from_slice(&old[BLOCK_SIZE..]);
        let delta = diff(&old, &new);
        assert_eq!(patch(&old, &delta).unwrap(), new);
        assert!(delta.len() < BLOCK_SIZE * 3, "{}", delta.len());
    }

    #[test]
    fn scattered_edits_degenerate_vs_bsdiff() {
        // The structural weakness: no byte-wise delta. One changed byte
        // per block forces the whole block to be literal, while bsdiff
        // transmits near-zero effective bytes for the same workload.
        let old = lcg(11, BLOCK_SIZE * 40);
        let mut new = old.clone();
        for i in (BLOCK_SIZE / 2..new.len()).step_by(BLOCK_SIZE) {
            new[i] ^= 0x01;
        }
        let block_delta = diff(&old, &new);
        assert_eq!(patch(&old, &block_delta).unwrap(), new);
        let bsdiff_effective = crate::diff(&old, &new).iter().filter(|&&b| b != 0).count();
        assert!(
            block_delta.len() > old.len() * 3 / 4,
            "block diff degenerates: {} of {}",
            block_delta.len(),
            old.len()
        );
        assert!(
            bsdiff_effective < old.len() / 10,
            "bsdiff stays tiny: {bsdiff_effective}"
        );
    }

    #[test]
    fn rejects_corrupt_streams() {
        let old = lcg(11, 1000);
        let delta = diff(&old, &lcg(12, 900));
        assert_eq!(patch(&old, &delta[..4]), Err(BlockDiffError::BadMagic));
        let mut bad_magic = delta.clone();
        bad_magic[0] = b'X';
        assert_eq!(patch(&old, &bad_magic), Err(BlockDiffError::BadMagic));
        let truncated = &delta[..delta.len() - 1];
        assert!(patch(&old, truncated).is_err());
    }

    #[test]
    fn huge_declared_length_does_not_preallocate() {
        // The allocation-DoS case: a 12-byte delta declaring a ~4 GiB
        // output. The decode must fail with a typed error without ever
        // reserving the declared length.
        let mut delta = Vec::new();
        delta.extend_from_slice(&MAGIC);
        delta.extend_from_slice(&u32::MAX.to_le_bytes());
        delta.extend_from_slice(&[0x00, 0x00, 0x00, 0x00]); // empty literal + junk
        let err = patch(&[0u8; 64], &delta).unwrap_err();
        assert_eq!(err, BlockDiffError::Truncated);
        // With a slot-derived budget the lie is rejected before decoding.
        assert_eq!(
            patch_with_budget(&[0u8; 64], &delta, 4096),
            Err(BlockDiffError::BudgetExceeded)
        );
    }

    #[test]
    fn budget_admits_honest_deltas() {
        let old = lcg(20, 3000);
        let new = lcg(21, 2500);
        let delta = diff(&old, &new);
        assert_eq!(patch_with_budget(&old, &delta, new.len()).unwrap(), new);
        assert_eq!(
            patch_with_budget(&old, &delta, new.len() - 1),
            Err(BlockDiffError::BudgetExceeded)
        );
    }

    #[test]
    fn rejects_out_of_bounds_copy() {
        let mut delta = Vec::new();
        delta.extend_from_slice(&MAGIC);
        delta.extend_from_slice(&(BLOCK_SIZE as u32).to_le_bytes());
        delta.push(0x01);
        delta.extend_from_slice(&999u32.to_le_bytes());
        assert_eq!(
            patch(&[0u8; BLOCK_SIZE], &delta),
            Err(BlockDiffError::OutOfBounds)
        );
    }

    #[test]
    fn blockdiff_is_not_a_pipeline_wire_format() {
        // `PatchFormat::detect` sniffs the pipeline containers from their
        // magic; the blockdiff experiment baseline must never be mistaken
        // for one (its magic is distinct from both by construction).
        let old = lcg(30, 2000);
        let new = lcg(31, 2000);
        let delta = diff(&old, &new);
        assert_eq!(&delta[..4], &MAGIC);
        assert_eq!(crate::PatchFormat::detect(&delta), None);
        assert_eq!(
            crate::PatchFormat::detect(&crate::diff(&old, &new)),
            Some(crate::PatchFormat::Raw)
        );
        assert_eq!(
            crate::PatchFormat::detect(&crate::framed_diff(
                &old,
                &new,
                &crate::FramedDiffOptions::default()
            )),
            Some(crate::PatchFormat::Framed)
        );
    }
}
