//! Suffix-array construction and longest-match search.
//!
//! `bsdiff` finds, for every position of the new firmware, the longest
//! match anywhere in the old firmware. The classic implementation does this
//! with a suffix array over the old image. Construction defaults to the
//! linear-time SA-IS algorithm ([`crate::sais`]); the Manber–Myers
//! prefix-doubling construction (`O(n log² n)`) is kept as a cross-checked
//! fallback, selectable crate-wide with the `prefix-doubling` feature.

/// A suffix array over a byte string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SuffixArray {
    /// `sa[i]` = start offset of the i-th smallest suffix.
    sa: Vec<u32>,
}

impl SuffixArray {
    /// Builds the suffix array of `data` with the default construction:
    /// SA-IS, or prefix-doubling when the `prefix-doubling` feature is on.
    #[must_use]
    pub fn build(data: &[u8]) -> Self {
        #[cfg(feature = "prefix-doubling")]
        {
            Self::build_prefix_doubling(data)
        }
        #[cfg(not(feature = "prefix-doubling"))]
        {
            Self::build_sais(data)
        }
    }

    /// Builds the suffix array with the linear-time SA-IS construction.
    #[must_use]
    pub fn build_sais(data: &[u8]) -> Self {
        Self {
            sa: crate::sais::suffix_array(data),
        }
    }

    /// Builds the suffix array with Manber–Myers prefix doubling
    /// (`O(n log² n)`), the fallback construction.
    ///
    /// Each round sorts by a precomputed per-suffix key packing
    /// `(rank[i], rank[i + k] + 1)` into one `u64` — recomputing the pair
    /// inside the sort comparator would evaluate it `O(n log n)` times per
    /// round — and the loop exits as soon as every rank is distinct.
    #[must_use]
    pub fn build_prefix_doubling(data: &[u8]) -> Self {
        let n = data.len();
        if n == 0 {
            return Self { sa: Vec::new() };
        }

        let mut sa: Vec<u32> = (0..n as u32).collect();
        let mut rank: Vec<u32> = data.iter().map(|&b| u32::from(b)).collect();
        let mut tmp = vec![0u32; n];
        let mut keys = vec![0u64; n];

        let mut k = 1usize;
        while k < n {
            for i in 0..n {
                let second = if i + k < n {
                    u64::from(rank[i + k]) + 1
                } else {
                    0
                };
                keys[i] = (u64::from(rank[i]) << 32) | second;
            }
            sa.sort_unstable_by_key(|&i| keys[i as usize]);

            tmp[sa[0] as usize] = 0;
            for w in 1..n {
                let prev = sa[w - 1] as usize;
                let cur = sa[w] as usize;
                tmp[cur] = tmp[prev] + u32::from(keys[prev] != keys[cur]);
            }
            core::mem::swap(&mut rank, &mut tmp);
            if rank[sa[n - 1] as usize] as usize == n - 1 {
                break;
            }
            k *= 2;
        }

        Self { sa }
    }

    /// The sorted suffix offsets: `offsets()[i]` is the start position of
    /// the i-th lexicographically smallest suffix.
    #[must_use]
    pub fn offsets(&self) -> &[u32] {
        &self.sa
    }

    /// Number of suffixes (= input length).
    #[must_use]
    pub fn len(&self) -> usize {
        self.sa.len()
    }

    /// Returns `true` for an empty input.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sa.is_empty()
    }

    /// Finds the longest prefix of `needle` occurring anywhere in `old`
    /// (the string this array was built over). Returns `(length, offset)`;
    /// `(0, 0)` when nothing matches.
    #[must_use]
    pub fn longest_match(&self, old: &[u8], needle: &[u8]) -> (usize, usize) {
        if self.sa.is_empty() || needle.is_empty() {
            return (0, 0);
        }

        // Binary search for the suffix with the longest common prefix.
        let mut lo = 0usize;
        let mut hi = self.sa.len();
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if old[self.sa[mid] as usize..] < *needle {
                lo = mid;
            } else {
                hi = mid;
            }
        }

        // The best match borders the insertion point: check `lo` and `hi`.
        let lcp = |offset: usize| -> usize {
            old[offset..]
                .iter()
                .zip(needle.iter())
                .take_while(|(a, b)| a == b)
                .count()
        };
        let cand_lo = (lcp(self.sa[lo] as usize), self.sa[lo] as usize);
        let cand_hi = if hi < self.sa.len() {
            (lcp(self.sa[hi] as usize), self.sa[hi] as usize)
        } else {
            (0, 0)
        };
        if cand_lo.0 >= cand_hi.0 {
            cand_lo
        } else {
            cand_hi
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sa(data: &[u8]) -> Vec<u32> {
        let mut sa: Vec<u32> = (0..data.len() as u32).collect();
        sa.sort_by(|&a, &b| data[a as usize..].cmp(&data[b as usize..]));
        sa
    }

    #[test]
    fn matches_naive_construction() {
        for data in [
            b"banana".to_vec(),
            b"mississippi".to_vec(),
            b"aaaaaaaa".to_vec(),
            b"abcdefgh".to_vec(),
            (0..=255u8).collect::<Vec<u8>>(),
            b"abababababab".to_vec(),
        ] {
            let sa = SuffixArray::build(&data);
            assert_eq!(sa.sa, naive_sa(&data), "default, input {data:?}");
            let sais = SuffixArray::build_sais(&data);
            assert_eq!(sais.sa, naive_sa(&data), "SA-IS, input {data:?}");
            let doubling = SuffixArray::build_prefix_doubling(&data);
            assert_eq!(doubling.sa, naive_sa(&data), "doubling, input {data:?}");
        }
    }

    #[test]
    fn matches_naive_on_pseudorandom() {
        let mut state = 99u32;
        let data: Vec<u8> = (0..2000)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (state >> 28) as u8 // small alphabet → many repeats
            })
            .collect();
        let sa = SuffixArray::build(&data);
        assert_eq!(sa.sa, naive_sa(&data));
    }

    #[test]
    fn constructions_agree_on_pseudorandom_inputs() {
        let mut state = 0x5EED_u32;
        for len in [1usize, 2, 17, 256, 3000, 10_000] {
            let data: Vec<u8> = (0..len)
                .map(|_| {
                    state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    (state >> 26) as u8
                })
                .collect();
            assert_eq!(
                SuffixArray::build_sais(&data).sa,
                SuffixArray::build_prefix_doubling(&data).sa,
                "len {len}"
            );
        }
    }

    #[test]
    fn empty_input() {
        let sa = SuffixArray::build(b"");
        assert!(sa.is_empty());
        assert_eq!(sa.longest_match(b"", b"abc"), (0, 0));
    }

    #[test]
    fn longest_match_finds_substring() {
        let old = b"the quick brown fox jumps over the lazy dog";
        let sa = SuffixArray::build(old);
        let (len, pos) = sa.longest_match(old, b"brown fox leaps");
        assert_eq!(&old[pos..pos + len], b"brown fox ");
        assert_eq!(len, 10);
    }

    #[test]
    fn longest_match_full_needle() {
        let old = b"abcdefghij";
        let sa = SuffixArray::build(old);
        let (len, pos) = sa.longest_match(old, b"cdefg");
        assert_eq!((len, pos), (5, 2));
    }

    #[test]
    fn longest_match_no_match() {
        let old = b"aaaa";
        let sa = SuffixArray::build(old);
        let (len, _) = sa.longest_match(old, b"zzz");
        assert_eq!(len, 0);
    }

    #[test]
    fn longest_match_prefers_longest() {
        let old = b"xx_abc_yy_abcdef_zz";
        let sa = SuffixArray::build(old);
        let (len, pos) = sa.longest_match(old, b"abcdefgh");
        assert_eq!(len, 6);
        assert_eq!(&old[pos..pos + len], b"abcdef");
    }

    #[test]
    fn longest_match_empty_needle() {
        let old = b"abc";
        let sa = SuffixArray::build(old);
        assert_eq!(sa.longest_match(old, b""), (0, 0));
    }

    #[test]
    fn longest_match_agrees_with_naive_scan() {
        let mut state = 7u32;
        let old: Vec<u8> = (0..500)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (state >> 29) as u8
            })
            .collect();
        let sa = SuffixArray::build(&old);
        for start in (0..400).step_by(37) {
            let needle = &old[start..(start + 60).min(old.len())];
            let (len, pos) = sa.longest_match(&old, needle);
            // Naive: longest prefix of needle at any position.
            let mut best = 0;
            for p in 0..old.len() {
                let l = old[p..]
                    .iter()
                    .zip(needle.iter())
                    .take_while(|(a, b)| a == b)
                    .count();
                best = best.max(l);
            }
            assert_eq!(len, best, "start {start}");
            assert_eq!(&old[pos..pos + len], &needle[..len]);
        }
    }
}
