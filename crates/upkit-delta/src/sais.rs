//! Linear-time suffix-array construction (SA-IS).
//!
//! Implements the induced-sorting algorithm of Nong, Zhang and Chan
//! ("Two Efficient Algorithms for Linear Time Suffix Array Construction",
//! IEEE ToC 2011). Suffixes are classified as L- or S-type, the *leftmost
//! S-type* (LMS) suffixes are sorted — recursively, on a reduced string,
//! when their substrings are not pairwise distinct — and the rest of the
//! order is induced from them in two linear bucket scans. Overall `O(n)`
//! time and `O(n)` extra space, against `O(n log² n)` for the
//! prefix-doubling construction it replaces as the default.

/// Marker for an unfilled suffix-array slot during induction.
const EMPTY: u32 = u32::MAX;

/// Computes the suffix array of `data` in linear time.
///
/// Returns the start offsets of all suffixes of `data` in increasing
/// lexicographic order, exactly like the prefix-doubling construction
/// (no sentinel suffix is included).
#[must_use]
pub fn suffix_array(data: &[u8]) -> Vec<u32> {
    match data.len() {
        0 => Vec::new(),
        1 => vec![0],
        _ => {
            // Shift the alphabet up by one so 0 is free for the unique,
            // smallest sentinel SA-IS requires at the end of the text.
            let mut text: Vec<u32> = Vec::with_capacity(data.len() + 1);
            text.extend(data.iter().map(|&b| u32::from(b) + 1));
            text.push(0);
            let sa = sais(&text, 257);
            // sa[0] is the sentinel suffix; the rest is the answer.
            sa[1..].to_vec()
        }
    }
}

/// SA-IS proper. `text` must end with a unique smallest symbol (the
/// sentinel) and all symbols must be `< alphabet`.
fn sais(text: &[u32], alphabet: usize) -> Vec<u32> {
    let n = text.len();
    if n == 1 {
        return vec![0];
    }
    if n == 2 {
        return vec![1, 0];
    }

    // L/S classification, right to left. `is_s[i]` ⇔ suffix i is S-type:
    // smaller than the suffix starting one position to its right.
    let mut is_s = vec![false; n];
    is_s[n - 1] = true;
    for i in (0..n - 1).rev() {
        is_s[i] = text[i] < text[i + 1] || (text[i] == text[i + 1] && is_s[i + 1]);
    }
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];

    let mut bucket_sizes = vec![0u32; alphabet];
    for &c in text {
        bucket_sizes[c as usize] += 1;
    }

    // Pass 1: drop the LMS suffixes into their bucket tails in text order
    // (any order works here) and induce. Afterwards the LMS *substrings*
    // appear in `sa` in sorted order.
    let lms_positions: Vec<u32> = (1..n).filter(|&i| is_lms(i)).map(|i| i as u32).collect();
    let mut sa = vec![EMPTY; n];
    induce(text, &mut sa, &is_s, &bucket_sizes, &lms_positions);

    // Name each LMS substring by its rank among the sorted substrings;
    // equal substrings share a name.
    let mut names = vec![EMPTY; n];
    let mut name = 0u32;
    let mut prev: Option<usize> = None;
    for &entry in sa.iter() {
        let p = entry as usize;
        if !is_lms(p) {
            continue;
        }
        if let Some(q) = prev {
            if !lms_substrings_equal(text, &is_s, p, q) {
                name += 1;
            }
        }
        names[p] = name;
        prev = Some(p);
    }
    let distinct = name as usize + 1;

    // Sort the LMS suffixes themselves: directly if every substring is
    // distinct, otherwise by recursing on the reduced string of names.
    let lms_sorted: Vec<u32> = if distinct == lms_positions.len() {
        let mut order = vec![0u32; lms_positions.len()];
        for &p in &lms_positions {
            order[names[p as usize] as usize] = p;
        }
        order
    } else {
        let reduced: Vec<u32> = lms_positions.iter().map(|&p| names[p as usize]).collect();
        let reduced_sa = sais(&reduced, distinct);
        reduced_sa
            .iter()
            .map(|&r| lms_positions[r as usize])
            .collect()
    };

    // Pass 2: induce the final order from the fully sorted LMS suffixes.
    induce(text, &mut sa, &is_s, &bucket_sizes, &lms_sorted);
    sa
}

/// One induction round: seeds `sa` with the given LMS suffixes at their
/// bucket tails, then induces L-type suffixes left-to-right from bucket
/// heads and S-type suffixes right-to-left from bucket tails.
fn induce(text: &[u32], sa: &mut [u32], is_s: &[bool], bucket_sizes: &[u32], lms: &[u32]) {
    let n = text.len();
    sa.fill(EMPTY);

    let mut tails = bucket_tails(bucket_sizes);
    for &p in lms.iter().rev() {
        let c = text[p as usize] as usize;
        tails[c] -= 1;
        sa[tails[c] as usize] = p;
    }

    let mut heads = bucket_heads(bucket_sizes);
    for i in 0..n {
        let j = sa[i];
        if j == EMPTY || j == 0 {
            continue;
        }
        let k = j as usize - 1;
        if !is_s[k] {
            let c = text[k] as usize;
            sa[heads[c] as usize] = k as u32;
            heads[c] += 1;
        }
    }

    let mut tails = bucket_tails(bucket_sizes);
    for i in (0..n).rev() {
        let j = sa[i];
        if j == EMPTY || j == 0 {
            continue;
        }
        let k = j as usize - 1;
        if is_s[k] {
            let c = text[k] as usize;
            tails[c] -= 1;
            sa[tails[c] as usize] = k as u32;
        }
    }
}

/// First slot of each symbol's bucket.
fn bucket_heads(bucket_sizes: &[u32]) -> Vec<u32> {
    let mut heads = Vec::with_capacity(bucket_sizes.len());
    let mut sum = 0u32;
    for &size in bucket_sizes {
        heads.push(sum);
        sum += size;
    }
    heads
}

/// One past the last slot of each symbol's bucket.
fn bucket_tails(bucket_sizes: &[u32]) -> Vec<u32> {
    let mut tails = Vec::with_capacity(bucket_sizes.len());
    let mut sum = 0u32;
    for &size in bucket_sizes {
        sum += size;
        tails.push(sum);
    }
    tails
}

/// Compares the LMS substrings starting at `a` and `b` (from each LMS
/// position up to and including the next LMS position).
fn lms_substrings_equal(text: &[u32], is_s: &[bool], a: usize, b: usize) -> bool {
    let n = text.len();
    // The sentinel's substring is the single sentinel symbol; nothing
    // else starts with it.
    if a == n - 1 || b == n - 1 {
        return a == b;
    }
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];
    let mut i = 0usize;
    loop {
        if text[a + i] != text[b + i] {
            return false;
        }
        if i > 0 {
            let end_a = is_lms(a + i);
            let end_b = is_lms(b + i);
            if end_a || end_b {
                return end_a && end_b;
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sa(data: &[u8]) -> Vec<u32> {
        let mut sa: Vec<u32> = (0..data.len() as u32).collect();
        sa.sort_by(|&a, &b| data[a as usize..].cmp(&data[b as usize..]));
        sa
    }

    #[test]
    fn matches_naive_on_classic_inputs() {
        for data in [
            b"".to_vec(),
            b"a".to_vec(),
            b"ab".to_vec(),
            b"ba".to_vec(),
            b"aa".to_vec(),
            b"banana".to_vec(),
            b"mississippi".to_vec(),
            b"aaaaaaaa".to_vec(),
            b"abcdefgh".to_vec(),
            b"abababababab".to_vec(),
            b"cabbage".to_vec(),
            (0..=255u8).collect::<Vec<u8>>(),
            (0..=255u8).rev().collect::<Vec<u8>>(),
        ] {
            assert_eq!(suffix_array(&data), naive_sa(&data), "input {data:?}");
        }
    }

    #[test]
    fn matches_naive_on_small_alphabets() {
        // Small alphabets force deep recursion (many equal LMS substrings).
        let mut state = 42u32;
        for len in [10usize, 100, 1000, 4000] {
            for bits in [1u32, 2, 3] {
                let data: Vec<u8> = (0..len)
                    .map(|_| {
                        state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                        ((state >> 27) & ((1 << bits) - 1)) as u8
                    })
                    .collect();
                assert_eq!(
                    suffix_array(&data),
                    naive_sa(&data),
                    "len {len} bits {bits}"
                );
            }
        }
    }

    #[test]
    fn matches_naive_on_pseudorandom_bytes() {
        let mut state = 7u32;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (state >> 24) as u8
            })
            .collect();
        assert_eq!(suffix_array(&data), naive_sa(&data));
    }

    #[test]
    fn handles_runs_and_periodicity() {
        let mut data = vec![0u8; 500];
        data.extend(core::iter::repeat_n(7u8, 500));
        data.extend(b"abc".repeat(200));
        assert_eq!(suffix_array(&data), naive_sa(&data));
    }
}
