//! The framed patch container: independently decodable per-window patches.
//!
//! A [`crate::PatchFormat::Raw`] patch is one monolithic bsdiff stream.
//! The framed container instead splits the *new* image into contiguous
//! windows and carries one complete Raw patch per window, each diffed
//! against the full old image and optionally LZSS-compressed on its own.
//! Windows are independent, which buys two things:
//!
//! * **generation parallelism** — the server diffs windows concurrently
//!   against one shared suffix array ([`crate::framed_diff`]);
//! * **bounded application** — the device applies one window at a time
//!   through an ordinary [`StreamPatcher`], each under its own
//!   slot-derived decode budget, so a lying window header is rejected
//!   before any oversized allocation.
//!
//! # Wire format
//!
//! All integers little-endian:
//!
//! ```text
//! magic "BSF2" ‖ old_len u32 ‖ new_len u32 ‖ window_count u32
//! window_count × { out_offset u32 ‖ out_len u32 ‖ comp u8 ‖ body_len u32 }
//! window_count bodies, concatenated in directory order
//! ```
//!
//! `comp` is `0` (raw bsdiff bytes) or `1` (LZSS stream holding them).
//! Directory entries must tile `[0, new_len)` exactly — in order, no
//! gaps, no overlap, no empty windows — and every `body_len` must fit
//! under [`max_window_body_len`], so neither the directory nor any body
//! can demand memory beyond what the declared (budget-checked) output
//! length already justifies.

use alloc::sync::Arc;
use alloc::vec::Vec;

use upkit_compress::{ByteSink, Decompressor, FixedBuf, LzssError};

use crate::{max_patch_len, OldImage, PatchError, StreamPatcher};

/// Magic bytes identifying a framed patch container.
pub const FRAMED_MAGIC: [u8; 4] = *b"BSF2";

/// Size in bytes of the framed container header.
pub const FRAMED_HEADER_LEN: usize = 4 + 4 + 4 + 4;

/// Size in bytes of one window directory entry.
pub const WINDOW_HEADER_LEN: usize = 4 + 4 + 1 + 4;

/// Window body stored as raw bsdiff bytes.
pub const COMP_NONE: u8 = 0;

/// Window body stored as an LZSS stream of bsdiff bytes.
pub const COMP_LZSS: u8 = 1;

/// Upper bound on the declared body length of a window producing
/// `out_len` bytes.
///
/// The body is a Raw patch bounded by [`max_patch_len`], possibly wrapped
/// in LZSS whose worst case adds the stream header plus one flag byte per
/// eight payload bytes. Any directory entry declaring more is a length
/// bomb and is rejected before its body is buffered.
#[must_use]
pub fn max_window_body_len(out_len: u64) -> u64 {
    let raw = max_patch_len(out_len);
    raw + raw.div_ceil(8) + upkit_compress::HEADER_LEN as u64
}

/// Errors produced while applying a framed patch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FramedError {
    /// The container does not begin with the framed magic bytes.
    BadMagic,
    /// The container targets an old image of a different length.
    OldLengthMismatch,
    /// The header declared an output longer than the decode budget.
    BudgetExceeded,
    /// The header declared more windows than the output length admits.
    WindowCountBomb,
    /// Directory offsets overlap, leave a gap, or declare an empty window.
    WindowLayout,
    /// A directory entry declared a body longer than any window of its
    /// size could need.
    BodyLengthBomb,
    /// A directory entry named an unknown compression algorithm.
    BadCompression,
    /// A window body failed to apply as a Raw patch.
    Window(PatchError),
    /// A compressed window body failed to decompress.
    Lzss(LzssError),
    /// The container ended before every window was applied.
    Truncated,
    /// Bytes followed the final window body.
    TrailingBytes,
}

impl FramedError {
    /// Whether this rejection defended a length/allocation bound (and
    /// should be charged to the `decode_overruns` counter) rather than a
    /// mere malformation.
    #[must_use]
    pub fn is_budget_rejection(&self) -> bool {
        matches!(
            self,
            Self::BudgetExceeded
                | Self::WindowCountBomb
                | Self::WindowLayout
                | Self::BodyLengthBomb
                | Self::Window(PatchError::BudgetExceeded)
                | Self::Lzss(LzssError::BudgetExceeded)
        )
    }
}

impl core::fmt::Display for FramedError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadMagic => f.write_str("missing framed-container magic bytes"),
            Self::OldLengthMismatch => {
                f.write_str("framed patch targets an old image of different size")
            }
            Self::BudgetExceeded => {
                f.write_str("framed patch declared output exceeds decode budget")
            }
            Self::WindowCountBomb => {
                f.write_str("framed patch declared more windows than output bytes")
            }
            Self::WindowLayout => f.write_str("framed window directory does not tile the output"),
            Self::BodyLengthBomb => f.write_str("framed window declared an impossible body length"),
            Self::BadCompression => {
                f.write_str("framed window names an unknown compression algorithm")
            }
            Self::Window(e) => write!(f, "framed window body failed to apply: {e}"),
            Self::Lzss(e) => write!(f, "framed window body failed to decompress: {e}"),
            Self::Truncated => f.write_str("framed patch stream truncated"),
            Self::TrailingBytes => f.write_str("bytes after the final framed window"),
        }
    }
}

impl core::error::Error for FramedError {}

impl From<PatchError> for FramedError {
    fn from(e: PatchError) -> Self {
        Self::Window(e)
    }
}

impl From<LzssError> for FramedError {
    fn from(e: LzssError) -> Self {
        Self::Lzss(e)
    }
}

/// Compressed-body input bytes fed to the decompressor per drain step.
const DECOMP_CHUNK: usize = 4;

/// Stack scratch for draining a window decompressor: each input byte can
/// emit at most [`upkit_compress::MAX_MATCH`] bytes.
const DECOMP_SCRATCH: usize = DECOMP_CHUNK * upkit_compress::MAX_MATCH;

/// One parsed window directory entry.
#[derive(Clone, Copy, Debug)]
struct WindowHeader {
    out_len: u32,
    comp: u8,
    body_len: u32,
}

// The Body variant embeds the decompressor's window buffer inline
// (~8 KiB) precisely so that starting the next window never touches the
// heap; boxing it would re-introduce an allocation per compressed window
// in the steady-state body loop.
#[allow(clippy::large_enum_variant)]
enum FramedState<O> {
    Header {
        filled: usize,
    },
    Directory {
        filled: usize,
        next_offset: u64,
    },
    Body {
        index: usize,
        remaining: u32,
        decomp: Option<Decompressor>,
        patcher: StreamPatcher<Arc<O>>,
    },
    Done,
}

/// Incremental framed-patch application: accepts container bytes in
/// arbitrary chunks and appends reconstructed output to a caller buffer.
///
/// Each window is applied through its own [`StreamPatcher`] (and, for
/// compressed bodies, its own [`Decompressor`]) whose budgets derive from
/// the window's directory entry, which in turn was validated against the
/// caller's overall `budget` — on a device, the target flash slot size.
/// Memory never scales past the bytes actually received plus the bounded
/// per-window scratch.
pub struct FramedPatcher<O> {
    old: Arc<O>,
    budget: u64,
    state: FramedState<O>,
    scratch: [u8; FRAMED_HEADER_LEN],
    new_len: u64,
    window_count: u32,
    windows: Vec<WindowHeader>,
    produced: u64,
}

impl<O: OldImage> FramedPatcher<O> {
    /// Creates a patcher that reads the previous firmware from `old`.
    #[must_use]
    pub fn new(old: O) -> Self {
        Self::with_budget(old, u64::MAX)
    }

    /// Creates a patcher that rejects any container whose header declares
    /// an output longer than `budget` bytes (see
    /// [`StreamPatcher::with_budget`]).
    #[must_use]
    pub fn with_budget(old: O, budget: u64) -> Self {
        Self {
            old: Arc::new(old),
            budget,
            state: FramedState::Header { filled: 0 },
            scratch: [0; FRAMED_HEADER_LEN],
            new_len: 0,
            window_count: 0,
            windows: Vec::new(),
            produced: 0,
        }
    }

    /// Declared output length (0 until the header is parsed).
    #[must_use]
    pub fn new_len(&self) -> u64 {
        self.new_len
    }

    /// Bytes produced so far.
    #[must_use]
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Declared window count (0 until the header is parsed).
    #[must_use]
    pub fn window_count(&self) -> u32 {
        self.window_count
    }

    /// Returns `true` once the full new image has been produced.
    #[must_use]
    pub fn is_done(&self) -> bool {
        matches!(self.state, FramedState::Done)
    }

    /// Feeds container bytes, appending reconstructed output to `out`.
    ///
    /// Compressed window bodies are decompressed through a fixed stack
    /// scratch buffer ([`DECOMP_SCRATCH`] bytes), so the push loop itself
    /// performs no heap allocation beyond the window directory (13 bytes
    /// per window, proportional to bytes actually received).
    pub fn push<S: ByteSink + ?Sized>(
        &mut self,
        input: &[u8],
        out: &mut S,
    ) -> Result<(), FramedError> {
        let mut input = input;
        while !input.is_empty() {
            match &mut self.state {
                FramedState::Header { filled } => {
                    let take = (FRAMED_HEADER_LEN - *filled).min(input.len());
                    self.scratch[*filled..*filled + take].copy_from_slice(&input[..take]);
                    input = &input[take..];
                    *filled += take;
                    if *filled == FRAMED_HEADER_LEN {
                        self.parse_header()?;
                    }
                }
                FramedState::Directory {
                    filled,
                    next_offset,
                } => {
                    let take = (WINDOW_HEADER_LEN - *filled).min(input.len());
                    self.scratch[*filled..*filled + take].copy_from_slice(&input[..take]);
                    input = &input[take..];
                    *filled += take;
                    if *filled == WINDOW_HEADER_LEN {
                        let next_offset = *next_offset;
                        self.parse_directory_entry(next_offset)?;
                    }
                }
                FramedState::Body {
                    remaining,
                    decomp,
                    patcher,
                    ..
                } => {
                    let take = (*remaining as usize).min(input.len());
                    match decomp {
                        Some(d) => {
                            // Drain the decompressor through a fixed stack
                            // buffer: DECOMP_CHUNK input bytes expand to at
                            // most DECOMP_CHUNK * MAX_MATCH output bytes,
                            // so the scratch can never overflow.
                            let mut scratch = [0u8; DECOMP_SCRATCH];
                            let mut done = 0usize;
                            while done < take {
                                let n = (take - done).min(DECOMP_CHUNK);
                                let mut plain = FixedBuf::new(&mut scratch);
                                d.push(&input[done..done + n], &mut plain)?;
                                debug_assert!(!plain.overflowed(), "scratch sized to worst case");
                                patcher.push(plain.as_slice(), out)?;
                                done += n;
                            }
                        }
                        None => patcher.push(&input[..take], out)?,
                    }
                    input = &input[take..];
                    *remaining -= take as u32;
                    if *remaining == 0 {
                        self.finish_window()?;
                    }
                }
                FramedState::Done => return Err(FramedError::TrailingBytes),
            }
        }
        Ok(())
    }

    /// Declares end of container input; fails if output is incomplete.
    pub fn finish(&self) -> Result<(), FramedError> {
        if self.is_done() {
            Ok(())
        } else {
            Err(FramedError::Truncated)
        }
    }

    fn parse_header(&mut self) -> Result<(), FramedError> {
        if self.scratch[..4] != FRAMED_MAGIC {
            return Err(FramedError::BadMagic);
        }
        let old_len = u32::from_le_bytes(self.scratch[4..8].try_into().expect("4 bytes"));
        if u64::from(old_len) != self.old.len() {
            return Err(FramedError::OldLengthMismatch);
        }
        self.new_len = u64::from(u32::from_le_bytes(
            self.scratch[8..12].try_into().expect("4 bytes"),
        ));
        if self.new_len > self.budget {
            return Err(FramedError::BudgetExceeded);
        }
        self.window_count = u32::from_le_bytes(self.scratch[12..16].try_into().expect("4 bytes"));
        // Every window must produce at least one byte, so a count beyond
        // `new_len` can only be a directory-allocation bomb. The entries
        // themselves are pushed as their 13 wire bytes arrive (never
        // pre-allocated from this declared count), so directory memory is
        // proportional to bytes actually received.
        if u64::from(self.window_count) > self.new_len {
            return Err(FramedError::WindowCountBomb);
        }
        if self.new_len == 0 {
            self.state = FramedState::Done;
        } else if self.window_count == 0 {
            // Non-empty output with no windows can never complete.
            return Err(FramedError::WindowLayout);
        } else {
            self.state = FramedState::Directory {
                filled: 0,
                next_offset: 0,
            };
        }
        Ok(())
    }

    fn parse_directory_entry(&mut self, expected_offset: u64) -> Result<(), FramedError> {
        let out_offset = u32::from_le_bytes(self.scratch[0..4].try_into().expect("4 bytes"));
        let out_len = u32::from_le_bytes(self.scratch[4..8].try_into().expect("4 bytes"));
        let comp = self.scratch[8];
        let body_len = u32::from_le_bytes(self.scratch[9..13].try_into().expect("4 bytes"));

        // Windows tile [0, new_len) in order: each entry starts exactly
        // where the previous one ended and is non-empty. Anything else —
        // overlap, gap, out-of-range — is an attempt to make the windows
        // produce more (or other) bytes than the budget-checked new_len.
        if u64::from(out_offset) != expected_offset
            || out_len == 0
            || expected_offset + u64::from(out_len) > self.new_len
        {
            return Err(FramedError::WindowLayout);
        }
        if comp != COMP_NONE && comp != COMP_LZSS {
            return Err(FramedError::BadCompression);
        }
        if u64::from(body_len) > max_window_body_len(u64::from(out_len)) {
            return Err(FramedError::BodyLengthBomb);
        }

        self.windows.push(WindowHeader {
            out_len,
            comp,
            body_len,
        });
        let next_offset = expected_offset + u64::from(out_len);
        if self.windows.len() < self.window_count as usize {
            self.state = FramedState::Directory {
                filled: 0,
                next_offset,
            };
        } else {
            if next_offset != self.new_len {
                return Err(FramedError::WindowLayout);
            }
            self.begin_window(0)?;
        }
        Ok(())
    }

    fn begin_window(&mut self, index: usize) -> Result<(), FramedError> {
        let header = self.windows[index];
        let decomp = match header.comp {
            COMP_LZSS => Some(Decompressor::with_budget(max_patch_len(u64::from(
                header.out_len,
            )))),
            _ => None,
        };
        self.state = FramedState::Body {
            index,
            remaining: header.body_len,
            decomp,
            patcher: StreamPatcher::with_budget(Arc::clone(&self.old), u64::from(header.out_len)),
        };
        if header.body_len == 0 {
            // A zero-byte body cannot even carry the inner patch header.
            self.finish_window()?;
        }
        Ok(())
    }

    fn finish_window(&mut self) -> Result<(), FramedError> {
        let FramedState::Body {
            index,
            decomp,
            patcher,
            ..
        } = &self.state
        else {
            unreachable!("finish_window called outside a body");
        };
        let index = *index;
        if let Some(d) = decomp {
            d.finish()?;
        }
        patcher.finish()?;
        let declared = u64::from(self.windows[index].out_len);
        if patcher.produced() != declared {
            // The inner patch header under-declared relative to the
            // directory: the window's output is short.
            return Err(FramedError::Window(PatchError::Truncated));
        }
        self.produced += declared;
        if index + 1 < self.windows.len() {
            self.begin_window(index + 1)?;
        } else {
            self.state = FramedState::Done;
        }
        Ok(())
    }
}

impl<O> core::fmt::Debug for FramedPatcher<O> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FramedPatcher")
            .field("new_len", &self.new_len)
            .field("window_count", &self.window_count)
            .field("produced", &self.produced)
            .finish_non_exhaustive()
    }
}

/// Applies a framed container to `old` in one call.
pub fn patch_framed(old: &[u8], container: &[u8]) -> Result<Vec<u8>, FramedError> {
    let mut patcher = FramedPatcher::new(old);
    let mut out = Vec::new();
    patcher.push(container, &mut out)?;
    patcher.finish()?;
    Ok(out)
}

/// Applies a framed container to `old` into a caller-provided buffer;
/// returns the number of bytes written.
///
/// The buffer length doubles as the decode budget, as in
/// [`crate::patch_into`]: a container declaring more output than `out`
/// can hold is rejected with [`FramedError::BudgetExceeded`] at the
/// header. Only the window directory is heap-allocated (13 bytes per
/// window); the per-window patch loop is allocation-free.
///
/// # Errors
///
/// Same as [`patch_framed`], plus the budget rejection described above.
pub fn patch_framed_into(
    old: &[u8],
    container: &[u8],
    out: &mut [u8],
) -> Result<usize, FramedError> {
    let budget = out.len() as u64;
    let mut buf = FixedBuf::new(out);
    let mut patcher = FramedPatcher::with_budget(old, budget);
    patcher.push(container, &mut buf)?;
    patcher.finish()?;
    debug_assert!(!buf.overflowed(), "budget bounds every write");
    Ok(buf.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{diff, framed_diff, patch, FramedDiffOptions};

    fn lcg_bytes(seed: u32, len: usize) -> Vec<u8> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (state >> 24) as u8
            })
            .collect()
    }

    fn sample_pair() -> (Vec<u8>, Vec<u8>) {
        let old = lcg_bytes(41, 20_000);
        let mut new = old.clone();
        new[3_000..3_200].copy_from_slice(&lcg_bytes(42, 200));
        new.extend_from_slice(b"appended-section");
        (old, new)
    }

    fn opts(window_len: usize) -> FramedDiffOptions {
        FramedDiffOptions::default().with_window_len(window_len)
    }

    #[test]
    fn round_trip_multi_window() {
        let (old, new) = sample_pair();
        for window_len in [1024usize, 4096, 64 * 1024, 1 << 30] {
            let container = framed_diff(&old, &new, &opts(window_len));
            assert_eq!(
                patch_framed(&old, &container).unwrap(),
                new,
                "window {window_len}"
            );
        }
    }

    #[test]
    fn framed_output_equals_raw_patch_output() {
        let (old, new) = sample_pair();
        let raw_out = patch(&old, &diff(&old, &new)).unwrap();
        let framed_out = patch_framed(&old, &framed_diff(&old, &new, &opts(2048))).unwrap();
        assert_eq!(raw_out, framed_out);
        assert_eq!(framed_out, new);
    }

    #[test]
    fn container_is_byte_identical_across_thread_counts() {
        let (old, new) = sample_pair();
        let reference = framed_diff(&old, &new, &opts(2048).with_threads(1));
        for threads in [2usize, 4, 8] {
            assert_eq!(
                framed_diff(&old, &new, &opts(2048).with_threads(threads)),
                reference,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn streaming_any_chunk_size() {
        let (old, new) = sample_pair();
        let container = framed_diff(&old, &new, &opts(3000));
        for chunk_size in [1usize, 7, 13, 64, 500, 1_000_000] {
            let mut patcher = FramedPatcher::new(old.as_slice());
            let mut out = Vec::new();
            for chunk in container.chunks(chunk_size) {
                patcher.push(chunk, &mut out).unwrap();
            }
            patcher.finish().unwrap();
            assert_eq!(out, new, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn empty_new_image() {
        let old = lcg_bytes(43, 500);
        let container = framed_diff(&old, &[], &opts(1024));
        assert_eq!(patch_framed(&old, &container).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn empty_old_image() {
        let new = lcg_bytes(44, 3000);
        let container = framed_diff(&[], &new, &opts(512));
        assert_eq!(patch_framed(&[], &container).unwrap(), new);
    }

    #[test]
    fn uncompressed_windows_round_trip() {
        let (old, new) = sample_pair();
        let mut options = opts(4096);
        options.lzss = None;
        let container = framed_diff(&old, &new, &options);
        assert_eq!(patch_framed(&old, &container).unwrap(), new);
    }

    #[test]
    fn encoder_respects_body_length_bound() {
        // Hostile-for-diff inputs: unrelated images maximize body size.
        let old = lcg_bytes(45, 4000);
        let new = lcg_bytes(46, 5000);
        let container = framed_diff(&old, &new, &opts(700));
        let count = u32::from_le_bytes(container[12..16].try_into().unwrap()) as usize;
        let mut cursor = FRAMED_HEADER_LEN;
        for _ in 0..count {
            let entry = &container[cursor..cursor + WINDOW_HEADER_LEN];
            let out_len = u32::from_le_bytes(entry[4..8].try_into().unwrap());
            let body_len = u32::from_le_bytes(entry[9..13].try_into().unwrap());
            assert!(u64::from(body_len) <= max_window_body_len(u64::from(out_len)));
            cursor += WINDOW_HEADER_LEN;
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let (old, new) = sample_pair();
        let mut container = framed_diff(&old, &new, &opts(4096));
        container[0] = b'X';
        assert_eq!(patch_framed(&old, &container), Err(FramedError::BadMagic));
    }

    #[test]
    fn rejects_wrong_old_image() {
        let (old, new) = sample_pair();
        let container = framed_diff(&old, &new, &opts(4096));
        let wrong = lcg_bytes(47, old.len() - 1);
        assert_eq!(
            patch_framed(&wrong, &container),
            Err(FramedError::OldLengthMismatch)
        );
    }

    #[test]
    fn budget_rejects_oversized_declaration() {
        let (old, new) = sample_pair();
        let container = framed_diff(&old, &new, &opts(4096));
        let mut patcher = FramedPatcher::with_budget(old.as_slice(), new.len() as u64 - 1);
        let mut out = Vec::new();
        assert_eq!(
            patcher.push(&container, &mut out),
            Err(FramedError::BudgetExceeded)
        );
        assert!(out.is_empty(), "rejected before producing output");
    }

    /// Header with arbitrary fields followed by nothing: bombs must be
    /// rejected from the header alone, before any allocation.
    fn header(old_len: u32, new_len: u32, window_count: u32) -> Vec<u8> {
        let mut h = Vec::new();
        h.extend_from_slice(&FRAMED_MAGIC);
        h.extend_from_slice(&old_len.to_le_bytes());
        h.extend_from_slice(&new_len.to_le_bytes());
        h.extend_from_slice(&window_count.to_le_bytes());
        h
    }

    fn entry(out_offset: u32, out_len: u32, comp: u8, body_len: u32) -> Vec<u8> {
        let mut e = Vec::new();
        e.extend_from_slice(&out_offset.to_le_bytes());
        e.extend_from_slice(&out_len.to_le_bytes());
        e.push(comp);
        e.extend_from_slice(&body_len.to_le_bytes());
        e
    }

    #[test]
    fn rejects_window_count_bomb_without_allocating() {
        let old = lcg_bytes(48, 64);
        let container = header(64, 32, u32::MAX);
        let mut patcher = FramedPatcher::with_budget(old.as_slice(), 1 << 20);
        let mut out = Vec::new();
        let err = patcher.push(&container, &mut out).unwrap_err();
        assert_eq!(err, FramedError::WindowCountBomb);
        assert!(err.is_budget_rejection());
        assert_eq!(patcher.windows.capacity(), 0, "no directory allocation");
    }

    #[test]
    fn rejects_zero_windows_for_nonempty_output() {
        let old = lcg_bytes(49, 64);
        assert_eq!(
            patch_framed(&old, &header(64, 32, 0)),
            Err(FramedError::WindowLayout)
        );
    }

    #[test]
    fn rejects_overlapping_window_offsets() {
        let old = lcg_bytes(50, 64);
        let mut container = header(64, 100, 2);
        container.extend_from_slice(&entry(0, 80, COMP_NONE, 16));
        container.extend_from_slice(&entry(40, 20, COMP_NONE, 16)); // overlaps first
        let err = patch_framed(&old, &container).unwrap_err();
        assert_eq!(err, FramedError::WindowLayout);
        assert!(err.is_budget_rejection());
    }

    #[test]
    fn rejects_gapped_window_offsets() {
        let old = lcg_bytes(51, 64);
        let mut container = header(64, 100, 2);
        container.extend_from_slice(&entry(0, 40, COMP_NONE, 16));
        container.extend_from_slice(&entry(60, 40, COMP_NONE, 16)); // 20-byte gap
        assert_eq!(
            patch_framed(&old, &container).unwrap_err(),
            FramedError::WindowLayout
        );
    }

    #[test]
    fn rejects_windows_that_do_not_reach_new_len() {
        let old = lcg_bytes(52, 64);
        let mut container = header(64, 100, 1);
        container.extend_from_slice(&entry(0, 40, COMP_NONE, 16)); // 60 bytes missing
        assert_eq!(
            patch_framed(&old, &container).unwrap_err(),
            FramedError::WindowLayout
        );
    }

    #[test]
    fn rejects_window_past_declared_output() {
        let old = lcg_bytes(53, 64);
        let mut container = header(64, 100, 1);
        container.extend_from_slice(&entry(0, 200, COMP_NONE, 16));
        assert_eq!(
            patch_framed(&old, &container).unwrap_err(),
            FramedError::WindowLayout
        );
    }

    #[test]
    fn rejects_per_window_declared_length_bomb() {
        let old = lcg_bytes(54, 64);
        let mut container = header(64, 100, 1);
        // 100-byte window cannot need a u32::MAX-byte body.
        container.extend_from_slice(&entry(0, 100, COMP_LZSS, u32::MAX));
        let err = patch_framed(&old, &container).unwrap_err();
        assert_eq!(err, FramedError::BodyLengthBomb);
        assert!(err.is_budget_rejection());
    }

    #[test]
    fn rejects_unknown_compression() {
        let old = lcg_bytes(55, 64);
        let mut container = header(64, 100, 1);
        container.extend_from_slice(&entry(0, 100, 7, 16));
        assert_eq!(
            patch_framed(&old, &container).unwrap_err(),
            FramedError::BadCompression
        );
    }

    #[test]
    fn rejects_truncated_container() {
        let (old, new) = sample_pair();
        let container = framed_diff(&old, &new, &opts(4096));
        let mut patcher = FramedPatcher::new(old.as_slice());
        let mut out = Vec::new();
        patcher
            .push(&container[..container.len() - 3], &mut out)
            .unwrap();
        assert_eq!(patcher.finish(), Err(FramedError::Truncated));
    }

    #[test]
    fn rejects_trailing_bytes() {
        let (old, new) = sample_pair();
        let mut container = framed_diff(&old, &new, &opts(4096));
        container.push(0);
        assert_eq!(
            patch_framed(&old, &container),
            Err(FramedError::TrailingBytes)
        );
    }

    #[test]
    fn rejects_window_body_lying_about_inner_length() {
        // Directory says 100 bytes, inner Raw patch declares (and makes) 40.
        let old = lcg_bytes(56, 64);
        let body = diff(&old, &lcg_bytes(57, 40));
        let mut container = header(64, 100, 1);
        container.extend_from_slice(&entry(0, 100, COMP_NONE, body.len() as u32));
        container.extend_from_slice(&body);
        assert_eq!(
            patch_framed(&old, &container).unwrap_err(),
            FramedError::Window(PatchError::Truncated)
        );
    }

    #[test]
    fn rejects_window_body_exceeding_directory_length() {
        // Directory says 40 bytes, inner Raw patch declares 100: the
        // per-window budget must stop it at the inner header.
        let old = lcg_bytes(58, 64);
        let body = diff(&old, &lcg_bytes(59, 100));
        let mut container = header(64, 100, 2);
        container.extend_from_slice(&entry(0, 40, COMP_NONE, body.len() as u32));
        container.extend_from_slice(&entry(40, 60, COMP_NONE, 16));
        container.extend_from_slice(&body);
        let err = patch_framed(&old, &container).unwrap_err();
        assert_eq!(err, FramedError::Window(PatchError::BudgetExceeded));
        assert!(err.is_budget_rejection());
    }

    #[test]
    fn reports_progress() {
        let (old, new) = sample_pair();
        let container = framed_diff(&old, &new, &opts(4096));
        let mut patcher = FramedPatcher::new(old.as_slice());
        let mut out = Vec::new();
        patcher
            .push(&container[..container.len() / 2], &mut out)
            .unwrap();
        assert_eq!(patcher.new_len(), new.len() as u64);
        assert!(patcher.window_count() >= 4);
        assert!(!patcher.is_done());
        patcher
            .push(&container[container.len() / 2..], &mut out)
            .unwrap();
        assert!(patcher.is_done());
        assert_eq!(patcher.produced(), new.len() as u64);
    }
}
