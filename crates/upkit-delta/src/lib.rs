//! Binary differencing (`bsdiff`) and streaming patching (`bspatch`) for
//! UpKit differential updates.
//!
//! The update server computes a delta between the device's current firmware
//! and the new image ([`diff`]); the device reconstructs the new image by
//! running the patch through its pipeline, where the *patching stage*
//! ([`StreamPatcher`]) consumes patch bytes incrementally — in radio-MTU
//! chunks — while reading the old image from a flash slot and emitting new
//! bytes straight to the writer stage. No extra slot is ever allocated for
//! the patch itself, which is the paper's key storage optimization
//! (Sect. IV-C).
//!
//! # Patch format
//!
//! `magic ‖ old_len u32 ‖ new_len u32`, then a sequence of entries:
//! `diff_len u32 ‖ extra_len u32 ‖ seek i32`, followed by `diff_len` bytes
//! to add to the old image at the current cursor and `extra_len` literal
//! bytes; `seek` then adjusts the old-image cursor. This is the classic
//! bsdiff structure with the three blocks interleaved so it can be applied
//! in a single pass. Compression is applied *outside* this crate (UpKit's
//! pipeline runs the patch through LZSS first).
//!
//! A fixed-block baseline ([`blockdiff`]) is included so the bsdiff choice
//! can be evaluated rather than assumed (see the `delta_algorithms`
//! experiment).
//!
//! # Examples
//!
//! ```
//! use upkit_delta::{diff, patch};
//!
//! let old = b"firmware version 1.0 with features A and B".to_vec();
//! let new = b"firmware version 2.0 with features A, B and C".to_vec();
//! let delta = diff(&old, &new);
//! assert_eq!(patch(&old, &delta).unwrap(), new);
//! ```

//! # `no_std` support
//!
//! With `--no-default-features` the crate builds as `no_std + alloc` and
//! keeps the *application* half — [`StreamPatcher`], [`FramedPatcher`],
//! [`patch`], [`patch_into`], and the [`blockdiff`] decoder. Patch
//! *generation* (suffix arrays, [`diff`], [`framed_diff`], the worker
//! pool, `blockdiff::diff`) is server-side work and needs the `std`
//! feature.

#![cfg_attr(not(feature = "std"), no_std)]
#![warn(missing_docs)]
#![warn(clippy::std_instead_of_core)]
#![warn(clippy::std_instead_of_alloc)]
#![warn(clippy::alloc_instead_of_core)]

extern crate alloc;

pub mod blockdiff;
pub mod framed;
#[cfg(feature = "std")]
pub mod pool;
#[cfg(feature = "std")]
pub mod sais;
#[cfg(feature = "std")]
pub mod suffix;
#[cfg(feature = "std")]
pub mod window;

pub use framed::{patch_framed, patch_framed_into, FramedError, FramedPatcher, FRAMED_MAGIC};
#[cfg(feature = "std")]
pub use window::{framed_diff, FramedDiffOptions, DEFAULT_WINDOW_LEN};

use alloc::vec::Vec;

#[cfg(feature = "std")]
use suffix::SuffixArray;
use upkit_compress::ByteSink;

/// Magic bytes identifying a patch produced by this crate.
pub const MAGIC: [u8; 4] = *b"BSD1";

/// The wire container a patch payload is encoded in.
///
/// `Raw` is the classic monolithic bsdiff stream ([`diff`]/[`patch`]);
/// `Framed` is the windowed container ([`framed_diff`]/[`patch_framed`])
/// that carries one independently compressed Raw patch per window of the
/// new image. Both start with a 4-byte magic, so a decoder (or a cache
/// key) can identify the container from the first bytes alone.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum PatchFormat {
    /// One monolithic bsdiff stream (`"BSD1"`).
    #[default]
    Raw,
    /// The windowed per-window-compressed container (`"BSF2"`).
    Framed,
}

impl PatchFormat {
    /// Identifies the patch container from its leading magic bytes.
    ///
    /// Returns `None` for anything else — including the [`blockdiff`]
    /// experiment format (`"BLK1"`), which is a baseline for evaluation,
    /// not a pipeline wire format.
    #[must_use]
    pub fn detect(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 4 {
            return None;
        }
        if bytes[..4] == MAGIC {
            Some(Self::Raw)
        } else if bytes[..4] == FRAMED_MAGIC {
            Some(Self::Framed)
        } else {
            None
        }
    }

    /// Stable lowercase label for trace events and cache keys.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Raw => "raw",
            Self::Framed => "framed",
        }
    }
}

/// Size in bytes of the patch header.
pub const HEADER_LEN: usize = 4 + 4 + 4;

/// Size in bytes of a control entry.
pub const CONTROL_LEN: usize = 4 + 4 + 4;

/// Upper bound on the size of any patch [`diff`] can emit for a
/// `new_len`-byte image.
///
/// Diff and extra bytes across all entries partition the new image
/// (`new_len` bytes total), and every entry's break condition guarantees
/// at least one byte of forward progress in `new`, so at most
/// `new_len + 1` control entries exist. Decoders sizing allocations from
/// untrusted length declarations clamp to this instead of trusting the
/// wire.
#[must_use]
pub fn max_patch_len(new_len: u64) -> u64 {
    HEADER_LEN as u64 + (new_len + 1) * (CONTROL_LEN as u64 + 1)
}

/// Errors produced while applying a patch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PatchError {
    /// The patch does not begin with the expected magic bytes.
    BadMagic,
    /// The patch was computed against an old image of a different length.
    OldLengthMismatch,
    /// A control entry walked outside the old image.
    OldRangeOutOfBounds,
    /// The patch produced more output than its header declared.
    OutputOverrun,
    /// The patch ended before producing the declared output length.
    Truncated,
    /// Reading the old image failed.
    OldReadFailed,
    /// The header declared an output longer than the decode budget.
    BudgetExceeded,
}

impl core::fmt::Display for PatchError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadMagic => f.write_str("missing bsdiff magic bytes"),
            Self::OldLengthMismatch => f.write_str("patch targets an old image of different size"),
            Self::OldRangeOutOfBounds => f.write_str("patch control walked outside the old image"),
            Self::OutputOverrun => f.write_str("patch produced more data than declared"),
            Self::Truncated => f.write_str("patch stream truncated"),
            Self::OldReadFailed => f.write_str("reading the old image failed"),
            Self::BudgetExceeded => f.write_str("patch declared output exceeds decode budget"),
        }
    }
}

impl core::error::Error for PatchError {}

/// Random-access source for the old firmware image during patching.
///
/// On the device this is backed by a flash slot (internal flash is
/// memory-mapped on the paper's platforms); in tests it is a byte slice.
pub trait OldImage {
    /// Total length of the old image in bytes.
    fn len(&self) -> u64;

    /// Returns `true` if the image is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads `buf.len()` bytes starting at `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`PatchError::OldReadFailed`] if the range cannot be read.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), PatchError>;
}

impl OldImage for [u8] {
    fn len(&self) -> u64 {
        <[u8]>::len(self) as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), PatchError> {
        let start = usize::try_from(offset).map_err(|_| PatchError::OldReadFailed)?;
        let end = start
            .checked_add(buf.len())
            .ok_or(PatchError::OldReadFailed)?;
        if end > <[u8]>::len(self) {
            return Err(PatchError::OldReadFailed);
        }
        buf.copy_from_slice(&self[start..end]);
        Ok(())
    }
}

impl OldImage for &[u8] {
    fn len(&self) -> u64 {
        <[u8]>::len(self) as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), PatchError> {
        (**self).read_at(offset, buf)
    }
}

impl OldImage for Vec<u8> {
    fn len(&self) -> u64 {
        self.as_slice().len() as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), PatchError> {
        self.as_slice().read_at(offset, buf)
    }
}

/// Shared old-image handles, so one image can back several patchers (the
/// framed container applies every window against the same old image).
impl<O: OldImage + ?Sized> OldImage for alloc::sync::Arc<O> {
    fn len(&self) -> u64 {
        (**self).len()
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<(), PatchError> {
        (**self).read_at(offset, buf)
    }
}

/// Which suffix-array construction a [`DeltaContext`] uses.
#[cfg(feature = "std")]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SuffixAlgorithm {
    /// Linear-time SA-IS (the default).
    #[default]
    SaIs,
    /// Manber–Myers prefix doubling, `O(n log² n)` (the fallback).
    PrefixDoubling,
}

/// Reusable per-old-image state for differencing.
///
/// Building the suffix array dominates [`diff`]; when one old image is
/// diffed against many new images — per-platform builds, per-version
/// campaigns, many device requests sharing a base release — the array
/// should be built once and shared. `DeltaContext` bundles the suffix
/// array with a SHA-256 of the old image so every later
/// [`DeltaContext::diff`] call can cheaply reject a mismatched old image
/// instead of silently producing a patch against the wrong base.
///
/// # Examples
///
/// ```
/// use upkit_delta::{patch, DeltaContext};
///
/// let old = b"shared base firmware image".to_vec();
/// let ctx = DeltaContext::new(&old);
/// for new in [b"shared base firmware image v2".to_vec(), b"rebuilt image".to_vec()] {
///     let delta = ctx.diff(&old, &new);
///     assert_eq!(patch(&old, &delta).unwrap(), new);
/// }
/// ```
#[cfg(feature = "std")]
#[derive(Clone, Debug)]
pub struct DeltaContext {
    suffix_array: SuffixArray,
    old_image_hash: [u8; 32],
}

#[cfg(feature = "std")]
impl DeltaContext {
    /// Builds the context for `old` with the default suffix-array
    /// construction.
    #[must_use]
    pub fn new(old: &[u8]) -> Self {
        Self {
            suffix_array: SuffixArray::build(old),
            old_image_hash: upkit_crypto::sha256::sha256(old),
        }
    }

    /// Builds the context with an explicit suffix-array construction
    /// (benchmarks compare the two; production uses [`DeltaContext::new`]).
    #[must_use]
    pub fn with_algorithm(old: &[u8], algorithm: SuffixAlgorithm) -> Self {
        let suffix_array = match algorithm {
            SuffixAlgorithm::SaIs => SuffixArray::build_sais(old),
            SuffixAlgorithm::PrefixDoubling => SuffixArray::build_prefix_doubling(old),
        };
        Self {
            suffix_array,
            old_image_hash: upkit_crypto::sha256::sha256(old),
        }
    }

    /// SHA-256 of the old image this context was built for.
    #[must_use]
    pub fn old_image_hash(&self) -> &[u8; 32] {
        &self.old_image_hash
    }

    /// The suffix array over the old image.
    #[must_use]
    pub fn suffix_array(&self) -> &SuffixArray {
        &self.suffix_array
    }

    /// Computes a patch transforming `old` into `new`, reusing this
    /// context's suffix array. Byte-identical to [`diff`] output.
    ///
    /// # Panics
    ///
    /// Panics if `old` is not the image the context was built for (the
    /// patch would corrupt every device applying it).
    #[must_use]
    pub fn diff(&self, old: &[u8], new: &[u8]) -> Vec<u8> {
        assert_eq!(
            upkit_crypto::sha256::sha256(old),
            self.old_image_hash,
            "DeltaContext used with a different old image than it was built for"
        );
        diff_with_suffix_array(&self.suffix_array, old, new)
    }

    /// Computes a framed (windowed) patch transforming `old` into `new`,
    /// reusing this context's suffix array across all window jobs.
    /// Byte-identical to [`framed_diff`] output at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `old` is not the image the context was built for.
    #[must_use]
    pub fn framed_diff(&self, old: &[u8], new: &[u8], options: &FramedDiffOptions) -> Vec<u8> {
        assert_eq!(
            upkit_crypto::sha256::sha256(old),
            self.old_image_hash,
            "DeltaContext used with a different old image than it was built for"
        );
        window::framed_diff_with_suffix_array(&self.suffix_array, old, new, options)
    }
}

/// Computes a patch transforming `old` into `new` (server-side operation).
///
/// Follows Colin Percival's bsdiff matching strategy: approximate matches
/// are extended with a mismatch budget so that byte-wise deltas of similar
/// regions compress well downstream.
///
/// Builds a fresh suffix array per call; use [`DeltaContext`] to amortize
/// that cost across several diffs against the same old image.
#[cfg(feature = "std")]
#[must_use]
pub fn diff(old: &[u8], new: &[u8]) -> Vec<u8> {
    diff_with_suffix_array(&SuffixArray::build(old), old, new)
}

#[cfg(feature = "std")]
pub(crate) fn diff_with_suffix_array(sa: &SuffixArray, old: &[u8], new: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + new.len() / 4 + 64);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(old.len() as u32).to_le_bytes());
    out.extend_from_slice(&(new.len() as u32).to_le_bytes());

    let mut scan = 0usize; // cursor in new
    let mut len = 0usize; // length of current match
    let mut pos = 0usize; // match position in old
    let mut lastscan = 0usize;
    let mut lastpos = 0usize;
    let mut lastoffset = 0isize;

    while scan < new.len() {
        let mut oldscore = 0usize;
        scan += len;
        let mut scsc = scan;

        while scan < new.len() {
            let (l, p) = sa.longest_match(old, &new[scan..]);
            len = l;
            pos = p;

            while scsc < scan + len {
                let off = scsc as isize + lastoffset;
                if off >= 0 && (off as usize) < old.len() && old[off as usize] == new[scsc] {
                    oldscore += 1;
                }
                scsc += 1;
            }

            if (len == oldscore && len != 0) || len > oldscore + 8 {
                break;
            }

            let off = scan as isize + lastoffset;
            if off >= 0 && (off as usize) < old.len() && old[off as usize] == new[scan] {
                oldscore = oldscore.saturating_sub(1);
            }
            scan += 1;
        }

        if len != oldscore || scan == new.len() {
            // Extend the previous match region forward (lenf) while at
            // least half the bytes agree.
            let mut lenf = 0usize;
            {
                let mut s = 0usize;
                let mut sf = 0usize;
                let mut i = 0usize;
                while lastscan + i < scan && lastpos + i < old.len() {
                    if old[lastpos + i] == new[lastscan + i] {
                        s += 1;
                    }
                    i += 1;
                    if s * 2 + lenf >= sf * 2 + i {
                        sf = s;
                        lenf = i;
                    }
                }
            }

            // Extend the new match region backward (lenb).
            let mut lenb = 0usize;
            if scan < new.len() {
                let mut s = 0usize;
                let mut sb = 0usize;
                let mut i = 1usize;
                while scan >= lastscan + i && pos >= i {
                    if old[pos - i] == new[scan - i] {
                        s += 1;
                    }
                    if s * 2 + lenb >= sb * 2 + i {
                        sb = s;
                        lenb = i;
                    }
                    i += 1;
                }
            }

            // Resolve overlap between the forward and backward extensions.
            if lastscan + lenf > scan - lenb {
                let overlap = (lastscan + lenf) - (scan - lenb);
                let mut s = 0isize;
                let mut best_s = 0isize;
                let mut lens = 0usize;
                for i in 0..overlap {
                    if new[lastscan + lenf - overlap + i] == old[lastpos + lenf - overlap + i] {
                        s += 1;
                    }
                    if new[scan - lenb + i] == old[pos - lenb + i] {
                        s -= 1;
                    }
                    if s > best_s {
                        best_s = s;
                        lens = i + 1;
                    }
                }
                lenf += lens;
                lenf -= overlap;
                lenb -= lens;
            }

            let extra_start = lastscan + lenf;
            let extra_len = (scan - lenb) - extra_start;
            let seek = (pos as i64 - lenb as i64) - (lastpos as i64 + lenf as i64);

            out.extend_from_slice(&(lenf as u32).to_le_bytes());
            out.extend_from_slice(&(extra_len as u32).to_le_bytes());
            out.extend_from_slice(&(seek as i32).to_le_bytes());
            for i in 0..lenf {
                out.push(new[lastscan + i].wrapping_sub(old[lastpos + i]));
            }
            out.extend_from_slice(&new[extra_start..extra_start + extra_len]);

            lastscan = scan - lenb;
            lastpos = pos - lenb;
            lastoffset = pos as isize - scan as isize;
        }
    }

    out
}

/// Applies `patch_bytes` to `old` in one call.
pub fn patch(old: &[u8], patch_bytes: &[u8]) -> Result<Vec<u8>, PatchError> {
    let mut patcher = StreamPatcher::new(old);
    let mut out = Vec::new();
    patcher.push(patch_bytes, &mut out)?;
    patcher.finish()?;
    Ok(out)
}

/// Applies `patch_bytes` to `old` into a caller-provided buffer, without
/// heap allocation; returns the number of bytes written.
///
/// The buffer length doubles as the decode budget: a patch declaring more
/// output than `out` can hold is rejected with
/// [`PatchError::BudgetExceeded`] at the header, so the patcher can never
/// run past the end of `out`.
///
/// # Errors
///
/// Same as [`patch`], plus the budget rejection described above.
pub fn patch_into(old: &[u8], patch_bytes: &[u8], out: &mut [u8]) -> Result<usize, PatchError> {
    let budget = out.len() as u64;
    let mut buf = upkit_compress::FixedBuf::new(out);
    let mut patcher = StreamPatcher::with_budget(old, budget);
    patcher.push(patch_bytes, &mut buf)?;
    patcher.finish()?;
    debug_assert!(!buf.overflowed(), "budget bounds every write");
    Ok(buf.len())
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PatchState {
    Header { filled: usize },
    Control { filled: usize },
    Diff { remaining: u32 },
    Extra { remaining: u32 },
    Done,
}

/// Bytes of old image read per iteration while applying a diff block.
///
/// Diff blocks are processed through a fixed stack buffer of this size so
/// the steady-state patch loop performs no heap allocation regardless of
/// block length.
const DIFF_CHUNK: usize = 256;

/// Incremental bspatch: accepts patch bytes in arbitrary chunks, reads the
/// old image on demand, and appends reconstructed bytes to any
/// [`ByteSink`] — a `Vec<u8>` on the host, a fixed slice
/// ([`upkit_compress::FixedBuf`]) on a device.
///
/// This is the *patching stage* of UpKit's pipeline. RAM usage is constant:
/// a 12-byte header/control scratch buffer, a [`DIFF_CHUNK`]-byte stack
/// buffer while applying diff blocks, and the old-image cursor. The push
/// loop itself never allocates.
#[derive(Debug)]
pub struct StreamPatcher<O> {
    old: O,
    state: PatchState,
    scratch: [u8; HEADER_LEN],
    new_len: u64,
    budget: u64,
    produced: u64,
    old_pos: i64,
    extra_after_diff: u32,
    seek_after_extra: i32,
}

impl<O: OldImage> StreamPatcher<O> {
    /// Creates a patcher that reads the previous firmware from `old`.
    #[must_use]
    pub fn new(old: O) -> Self {
        Self::with_budget(old, u64::MAX)
    }

    /// Creates a patcher that rejects any patch whose header declares an
    /// output longer than `budget` bytes.
    ///
    /// The declared length drives how much the caller accumulates and
    /// writes downstream; on a device the bound is the target flash slot,
    /// so a header lying about its output is rejected with
    /// [`PatchError::BudgetExceeded`] before any byte is produced.
    #[must_use]
    pub fn with_budget(old: O, budget: u64) -> Self {
        Self {
            old,
            state: PatchState::Header { filled: 0 },
            scratch: [0; HEADER_LEN],
            new_len: 0,
            budget,
            produced: 0,
            old_pos: 0,
            extra_after_diff: 0,
            seek_after_extra: 0,
        }
    }

    /// Declared output length (0 until the header is parsed).
    #[must_use]
    pub fn new_len(&self) -> u64 {
        self.new_len
    }

    /// Bytes produced so far.
    #[must_use]
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Returns `true` once the full new image has been produced.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.state == PatchState::Done
    }

    /// Feeds patch bytes, appending reconstructed output to `out`.
    ///
    /// Output overruns are detected *before* any byte of the offending
    /// block is emitted, so a sink sized to the (budget-checked) declared
    /// length can never overflow.
    pub fn push<S: ByteSink + ?Sized>(
        &mut self,
        input: &[u8],
        out: &mut S,
    ) -> Result<(), PatchError> {
        let mut input = input;
        while !input.is_empty() {
            match self.state {
                PatchState::Header { filled } => {
                    let take = (HEADER_LEN - filled).min(input.len());
                    self.scratch[filled..filled + take].copy_from_slice(&input[..take]);
                    input = &input[take..];
                    let filled = filled + take;
                    if filled == HEADER_LEN {
                        if self.scratch[..4] != MAGIC {
                            return Err(PatchError::BadMagic);
                        }
                        let old_len =
                            u32::from_le_bytes(self.scratch[4..8].try_into().expect("4 bytes"));
                        if u64::from(old_len) != self.old.len() {
                            return Err(PatchError::OldLengthMismatch);
                        }
                        self.new_len = u64::from(u32::from_le_bytes(
                            self.scratch[8..12].try_into().expect("4 bytes"),
                        ));
                        if self.new_len > self.budget {
                            return Err(PatchError::BudgetExceeded);
                        }
                        self.state = if self.new_len == 0 {
                            PatchState::Done
                        } else {
                            PatchState::Control { filled: 0 }
                        };
                    } else {
                        self.state = PatchState::Header { filled };
                    }
                }
                PatchState::Control { filled } => {
                    let take = (CONTROL_LEN - filled).min(input.len());
                    self.scratch[filled..filled + take].copy_from_slice(&input[..take]);
                    input = &input[take..];
                    let filled = filled + take;
                    if filled == CONTROL_LEN {
                        let diff_len =
                            u32::from_le_bytes(self.scratch[0..4].try_into().expect("4 bytes"));
                        self.extra_after_diff =
                            u32::from_le_bytes(self.scratch[4..8].try_into().expect("4 bytes"));
                        self.seek_after_extra =
                            i32::from_le_bytes(self.scratch[8..12].try_into().expect("4 bytes"));
                        self.state = PatchState::Diff {
                            remaining: diff_len,
                        };
                        self.advance_through_empty_blocks();
                    } else {
                        self.state = PatchState::Control { filled };
                    }
                }
                PatchState::Diff { remaining } => {
                    let take = (remaining as usize).min(input.len());
                    if self.produced + take as u64 > self.new_len {
                        return Err(PatchError::OutputOverrun);
                    }
                    // Bounds: old bytes [old_pos, old_pos + take).
                    if self.old_pos < 0
                        || (self.old_pos as u64).saturating_add(take as u64) > self.old.len()
                    {
                        return Err(PatchError::OldRangeOutOfBounds);
                    }
                    let mut old_buf = [0u8; DIFF_CHUNK];
                    let mut done = 0usize;
                    while done < take {
                        let n = (take - done).min(DIFF_CHUNK);
                        self.old
                            .read_at(self.old_pos as u64 + done as u64, &mut old_buf[..n])?;
                        for (delta, old_byte) in input[done..done + n].iter().zip(old_buf.iter()) {
                            out.put(delta.wrapping_add(*old_byte));
                        }
                        done += n;
                    }
                    self.produced += take as u64;
                    self.old_pos += take as i64;
                    input = &input[take..];
                    self.state = PatchState::Diff {
                        remaining: remaining - take as u32,
                    };
                    self.advance_through_empty_blocks();
                }
                PatchState::Extra { remaining } => {
                    let take = (remaining as usize).min(input.len());
                    if self.produced + take as u64 > self.new_len {
                        return Err(PatchError::OutputOverrun);
                    }
                    out.put_slice(&input[..take]);
                    self.produced += take as u64;
                    input = &input[take..];
                    self.state = PatchState::Extra {
                        remaining: remaining - take as u32,
                    };
                    self.advance_through_empty_blocks();
                }
                PatchState::Done => {
                    return Err(PatchError::OutputOverrun);
                }
            }
        }
        Ok(())
    }

    /// Declares end of patch input; fails if output is incomplete.
    pub fn finish(&self) -> Result<(), PatchError> {
        if self.state == PatchState::Done {
            Ok(())
        } else {
            Err(PatchError::Truncated)
        }
    }

    /// Moves past exhausted diff/extra blocks and applies the seek at the
    /// end of an entry, deciding whether the patch is complete.
    fn advance_through_empty_blocks(&mut self) {
        if let PatchState::Diff { remaining: 0 } = self.state {
            self.state = PatchState::Extra {
                remaining: self.extra_after_diff,
            };
        }
        if let PatchState::Extra { remaining: 0 } = self.state {
            self.old_pos += i64::from(self.seek_after_extra);
            self.state = if self.produced == self.new_len {
                PatchState::Done
            } else {
                PatchState::Control { filled: 0 }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_bytes(seed: u32, len: usize) -> Vec<u8> {
        let mut state = seed;
        (0..len)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (state >> 24) as u8
            })
            .collect()
    }

    fn round_trip(old: &[u8], new: &[u8]) -> usize {
        let delta = diff(old, new);
        assert_eq!(patch(old, &delta).unwrap(), new);
        // Like classic bsdiff, patches carry long zero runs for unchanged
        // regions; the pipeline's LZSS stage removes them. The effective
        // transfer cost is therefore approximated by non-zero bytes.
        delta.iter().filter(|&&b| b != 0).count()
    }

    #[test]
    fn identical_images() {
        let data = lcg_bytes(1, 5000);
        let size = round_trip(&data, &data);
        assert!(
            size < 100,
            "identical images should yield a near-zero effective patch, got {size}"
        );
    }

    #[test]
    fn empty_to_empty() {
        round_trip(b"", b"");
    }

    #[test]
    fn max_patch_len_bounds_every_emitted_patch() {
        // `max_patch_len` sizes the pipeline's decompressor budget, so it
        // must dominate everything `diff` can emit — including the
        // adversarial-looking workloads (unrelated images, scattered
        // edits) that maximize control-entry framing.
        let cases: [(Vec<u8>, Vec<u8>); 4] = [
            (lcg_bytes(3, 4000), lcg_bytes(4, 4000)),
            (vec![0xAA; 8000], {
                let mut new = vec![0xAA; 8000];
                new[..64].copy_from_slice(&[0x5A; 64]);
                new
            }),
            (lcg_bytes(5, 2000), {
                let mut new = lcg_bytes(5, 2000);
                for i in (0..new.len()).step_by(37) {
                    new[i] ^= 0xFF;
                }
                new
            }),
            (Vec::new(), lcg_bytes(6, 1000)),
        ];
        for (old, new) in cases {
            let delta = diff(&old, &new);
            assert!(
                (delta.len() as u64) <= max_patch_len(new.len() as u64),
                "patch of {} bytes exceeds max_patch_len({}) = {}",
                delta.len(),
                new.len(),
                max_patch_len(new.len() as u64)
            );
        }
    }

    #[test]
    fn empty_old() {
        round_trip(b"", b"brand new firmware image");
    }

    #[test]
    fn empty_new() {
        round_trip(b"old firmware", b"");
    }

    #[test]
    fn small_edit_produces_small_patch() {
        let old = lcg_bytes(2, 20_000);
        let mut new = old.clone();
        // Simulate an application change: flip a small region.
        for byte in &mut new[7000..7050] {
            *byte = byte.wrapping_add(13);
        }
        let size = round_trip(&old, &new);
        assert!(
            size < 2000,
            "50-byte change should not need {size} effective patch bytes"
        );
    }

    #[test]
    fn insertion_in_the_middle() {
        let old = lcg_bytes(3, 8000);
        let mut new = old[..4000].to_vec();
        new.extend_from_slice(b"inserted-code-section");
        new.extend_from_slice(&old[4000..]);
        round_trip(&old, &new);
    }

    #[test]
    fn deletion_in_the_middle() {
        let old = lcg_bytes(4, 8000);
        let mut new = old[..3000].to_vec();
        new.extend_from_slice(&old[5000..]);
        round_trip(&old, &new);
    }

    #[test]
    fn completely_different_images() {
        let old = lcg_bytes(5, 3000);
        let new = lcg_bytes(99, 3500);
        round_trip(&old, &new);
    }

    #[test]
    fn new_shorter_than_old() {
        let old = lcg_bytes(6, 10_000);
        let new = old[2000..6000].to_vec();
        round_trip(&old, &new);
    }

    #[test]
    fn repeated_structure() {
        let old: Vec<u8> = b"function_block_A".repeat(100);
        let mut new: Vec<u8> = b"function_block_A".repeat(60);
        new.extend_from_slice(&b"function_block_B".repeat(45));
        round_trip(&old, &new);
    }

    #[test]
    fn streaming_any_chunk_size() {
        let old = lcg_bytes(7, 6000);
        let mut new = old.clone();
        new[100..130].copy_from_slice(b"...thirty.bytes.of.change.....");
        new.extend_from_slice(b"appendix");
        let delta = diff(&old, &new);
        for chunk_size in [1usize, 3, 11, 64, 500, 10_000] {
            let mut patcher = StreamPatcher::new(old.as_slice());
            let mut out = Vec::new();
            for chunk in delta.chunks(chunk_size) {
                patcher.push(chunk, &mut out).unwrap();
            }
            patcher.finish().unwrap();
            assert_eq!(out, new, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut delta = diff(b"old", b"new");
        delta[0] = b'X';
        assert_eq!(patch(b"old", &delta), Err(PatchError::BadMagic));
    }

    #[test]
    fn rejects_wrong_old_image() {
        let old = lcg_bytes(8, 1000);
        let new = lcg_bytes(9, 1000);
        let delta = diff(&old, &new);
        let wrong_old = lcg_bytes(10, 999);
        assert_eq!(
            patch(&wrong_old, &delta),
            Err(PatchError::OldLengthMismatch)
        );
    }

    #[test]
    fn rejects_truncated_patch() {
        let old = lcg_bytes(11, 2000);
        let new = lcg_bytes(12, 2000);
        let delta = diff(&old, &new);
        let mut patcher = StreamPatcher::new(old.as_slice());
        let mut out = Vec::new();
        patcher.push(&delta[..delta.len() - 5], &mut out).unwrap();
        assert_eq!(patcher.finish(), Err(PatchError::Truncated));
    }

    #[test]
    fn rejects_trailing_bytes() {
        let old = b"abcdef".to_vec();
        let new = b"abcdxx".to_vec();
        let mut delta = diff(&old, &new);
        delta.push(0);
        assert_eq!(patch(&old, &delta), Err(PatchError::OutputOverrun));
    }

    #[test]
    fn rejects_out_of_bounds_seek() {
        // Hand-craft: control entry seeking far outside old, then a diff.
        let mut delta = Vec::new();
        delta.extend_from_slice(&MAGIC);
        delta.extend_from_slice(&4u32.to_le_bytes()); // old len
        delta.extend_from_slice(&4u32.to_le_bytes()); // new len
        delta.extend_from_slice(&0u32.to_le_bytes()); // diff 0
        delta.extend_from_slice(&0u32.to_le_bytes()); // extra 0
        delta.extend_from_slice(&1000i32.to_le_bytes()); // seek way out
        delta.extend_from_slice(&4u32.to_le_bytes()); // diff 4
        delta.extend_from_slice(&0u32.to_le_bytes());
        delta.extend_from_slice(&0i32.to_le_bytes());
        delta.extend_from_slice(&[0, 0, 0, 0]);
        assert_eq!(patch(b"abcd", &delta), Err(PatchError::OldRangeOutOfBounds));
    }

    #[test]
    fn patcher_reports_progress() {
        let old = lcg_bytes(13, 4000);
        let new = lcg_bytes(14, 4000);
        let delta = diff(&old, &new);
        let mut patcher = StreamPatcher::new(old.as_slice());
        let mut out = Vec::new();
        patcher.push(&delta[..delta.len() / 2], &mut out).unwrap();
        assert_eq!(patcher.new_len(), new.len() as u64);
        assert!(!patcher.is_done());
        patcher.push(&delta[delta.len() / 2..], &mut out).unwrap();
        assert!(patcher.is_done());
        assert_eq!(patcher.produced(), new.len() as u64);
    }

    #[test]
    fn context_diff_is_byte_identical_to_diff() {
        let old = lcg_bytes(21, 30_000);
        let ctx = DeltaContext::new(&old);
        for seed in [22u32, 23, 24, 25] {
            let mut new = old.clone();
            let edit = lcg_bytes(seed, 200);
            let at = (seed as usize * 997) % (new.len() - edit.len());
            new[at..at + edit.len()].copy_from_slice(&edit);
            assert_eq!(ctx.diff(&old, &new), diff(&old, &new), "seed {seed}");
        }
    }

    #[test]
    fn context_algorithms_produce_identical_patches() {
        let old = lcg_bytes(26, 12_000);
        let mut new = old.clone();
        new[4000..4100].copy_from_slice(&lcg_bytes(27, 100));
        let sais = DeltaContext::with_algorithm(&old, SuffixAlgorithm::SaIs);
        let doubling = DeltaContext::with_algorithm(&old, SuffixAlgorithm::PrefixDoubling);
        let patch_bytes = sais.diff(&old, &new);
        assert_eq!(patch_bytes, doubling.diff(&old, &new));
        assert_eq!(patch(&old, &patch_bytes).unwrap(), new);
    }

    #[test]
    #[should_panic(expected = "different old image")]
    fn context_rejects_mismatched_old_image() {
        let old = lcg_bytes(28, 1000);
        let ctx = DeltaContext::new(&old);
        let wrong = lcg_bytes(29, 1000);
        let _ = ctx.diff(&wrong, &old);
    }

    #[test]
    fn os_version_bump_patch_is_fraction_of_image() {
        // Model an OS version change: long shared runs with scattered edits.
        let old = lcg_bytes(15, 50_000);
        let mut new = old.clone();
        for start in (0..new.len()).step_by(5000) {
            let end = (start + 120).min(new.len());
            for byte in &mut new[start..end] {
                *byte = byte.wrapping_add(7);
            }
        }
        let delta = diff(&old, &new);
        let effective = delta.iter().filter(|&&b| b != 0).count();
        assert!(
            effective < old.len() / 5,
            "scattered edits: effective patch {} vs image {}",
            effective,
            old.len()
        );
        assert_eq!(patch(&old, &delta).unwrap(), new);
    }
}
