//! Campaign-level determinism proof: a staged rollout with a mid-stage
//! health halt produces byte-identical reports, counters, and merged
//! traces at 1, 2, and 8 threads, and the halt triggers at the same
//! virtual-clock round regardless of scheduling.
//!
//! This is the contract that makes the bounded-skew scheduler safe to
//! parallelise: health decisions live on the virtual clock (a pure
//! function of shard round summaries), never on wall-clock racing.

use std::sync::Arc;

use upkit_sim::campaign::{run_campaign_traced, CampaignConfig};
use upkit_sim::FleetConfig;
use upkit_trace::{MemorySink, Tracer};

fn halting_config() -> CampaignConfig {
    let mut config = CampaignConfig {
        fleet: FleetConfig {
            devices: 120,
            poll_fraction: 0.4,
            firmware_size: 6_000,
            differential: true,
            seed: 0xCA3_9A16,
        },
        shards: 6,
        threads: 1,
        stage_rounds: 3,
        ..CampaignConfig::default()
    };
    // A fifth of the fleet fails to boot the new image and the policy
    // tolerates almost none of it: the campaign must halt mid-stage.
    config.faults.boot_failure_bps = 2_000;
    config.health.max_boot_failures = 3;
    config
}

#[test]
fn halted_campaign_is_byte_identical_across_thread_counts() {
    let base = halting_config();
    let mut reference = None;
    for threads in [1usize, 2, 8] {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
        let report = run_campaign_traced(
            &CampaignConfig {
                threads,
                ..base.clone()
            },
            &tracer,
        );
        let halt = report.halted.expect("the seeded faults must halt");
        assert_eq!(report.updated, 0, "halt must roll the fleet back");
        assert!(report.rolled_back > 0);

        let records = sink.drain();
        assert!(!records.is_empty(), "trace must capture the campaign");
        assert!(
            records.iter().any(|r| r.event.kind() == "campaign_stage"),
            "stage transitions must be traced"
        );
        assert!(
            records.iter().any(|r| r.event.kind() == "campaign_halted"),
            "the halt must be traced"
        );
        let counters = tracer.counters().snapshot();
        assert!(counters.boots_failed > 0);
        assert_eq!(counters.campaign_halts, 1);
        assert_eq!(counters.forgeries_accepted, 0);

        match &reference {
            None => reference = Some((halt, report, records, counters)),
            Some((ref_halt, ref_report, ref_records, ref_counters)) => {
                assert_eq!(
                    ref_halt.round, halt.round,
                    "{threads} threads moved the halt round"
                );
                assert_eq!(ref_halt.reason, halt.reason);
                assert_eq!(ref_report, &report, "{threads} threads changed the report");
                assert_eq!(
                    ref_records, &records,
                    "{threads} threads changed the merged trace"
                );
                assert_eq!(
                    ref_counters, &counters,
                    "{threads} threads changed the counters"
                );
            }
        }
    }
}

#[test]
fn healthy_campaign_is_byte_identical_across_thread_counts() {
    let mut base = halting_config();
    base.faults.boot_failure_bps = 0;
    let mut reference = None;
    for threads in [1usize, 2, 8] {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
        let report = run_campaign_traced(
            &CampaignConfig {
                threads,
                ..base.clone()
            },
            &tracer,
        );
        assert!(report.halted.is_none());
        assert_eq!(report.updated, base.fleet.devices);
        let records = sink.drain();
        let counters = tracer.counters().snapshot();
        match &reference {
            None => reference = Some((report, records, counters)),
            Some((ref_report, ref_records, ref_counters)) => {
                assert_eq!(ref_report, &report, "{threads} threads changed the report");
                assert_eq!(ref_records, &records);
                assert_eq!(ref_counters, &counters);
            }
        }
    }
}
