//! Property and determinism proofs for the multi-hop dissemination
//! layer (`upkit_sim::topology`).
//!
//! * For **any** seeded topology, loss pattern, and cache size, every
//!   device that completes installs an image byte-identical to the
//!   direct single-hop fetch — the caching proxy can change *when*
//!   bytes arrive, never *what* gets installed.
//! * With a cache large enough to hold the catalog, a gateway fetches
//!   each distinct block upstream at most once, no matter how many
//!   devices it serves.
//! * A device that sleeps at every possible event boundary mid-session
//!   still converges, with the same wire traffic and exactly one
//!   install.
//! * Reports, counters, and trace bytes are identical at 1, 2, and 8
//!   worker threads.

use std::sync::Arc;

use proptest::prelude::*;
use upkit_sim::{run_dissemination, run_dissemination_traced, DutyCycle, TopologyConfig};
use upkit_trace::{MemorySink, Tracer};

/// A small, fast base configuration the properties perturb.
fn base_config() -> TopologyConfig {
    TopologyConfig {
        firmware_size: 900,
        block_size: 256,
        max_poll_attempts: 64,
        ..TopologyConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Image integrity is topology-independent: whatever the fan-out,
    /// mesh depth, loss rate, campaign count, or cache size (including
    /// caches too small to avoid thrashing), every device converges on
    /// the byte-exact image a direct single-hop fetch installs.
    #[test]
    fn any_topology_installs_the_exact_direct_fetch_image(
        gateways in 1u32..3,
        devices_per_gateway in 1u32..7,
        mesh_hops in 1u32..3,
        loss_bps in 0u32..1200,
        campaigns in 1u32..3,
        cache_blocks in 0usize..16,
        differential in any::<bool>(),
        seed in any::<u32>(),
    ) {
        let config = TopologyConfig {
            gateways,
            devices_per_gateway,
            mesh_hops,
            loss_rate: f64::from(loss_bps) / 10_000.0,
            campaigns,
            cache_blocks,
            differential,
            seed: u64::from(seed),
            ..base_config()
        };
        let report = run_dissemination(&config);
        let devices = gateways * devices_per_gateway;
        prop_assert_eq!(report.completed, devices, "gave_up={}", report.gave_up);
        prop_assert_eq!(report.gave_up, 0);
        prop_assert_eq!(report.image_mismatches, 0);
        prop_assert_eq!(report.image_matches, u64::from(devices));
        // Exactly one install per device: retries and cache churn never
        // double-apply an update.
        prop_assert_eq!(report.installs, u64::from(devices));
    }

    /// With the whole catalog cached, upstream fetches are bounded by
    /// the number of distinct blocks: adding devices adds cache hits,
    /// never upstream traffic.
    #[test]
    fn warm_cache_fetches_each_distinct_block_at_most_once(
        gateways in 1u32..3,
        extra_devices in 1u32..6,
        campaigns in 1u32..3,
        loss_bps in 0u32..800,
        seed in any::<u32>(),
    ) {
        let wide = TopologyConfig {
            gateways,
            // Every campaign has at least one device behind every
            // gateway (round-robin assignment over contiguous indices).
            devices_per_gateway: campaigns + extra_devices,
            campaigns,
            loss_rate: f64::from(loss_bps) / 10_000.0,
            cache_blocks: 1_024,
            seed: u64::from(seed),
            ..base_config()
        };
        // Reference: one device per campaign behind each gateway pulls
        // every distinct block exactly once.
        let narrow = TopologyConfig {
            devices_per_gateway: campaigns,
            ..wide
        };
        let wide_report = run_dissemination(&wide);
        let narrow_report = run_dissemination(&narrow);
        prop_assert_eq!(wide_report.completed, gateways * (campaigns + extra_devices));
        prop_assert_eq!(wide_report.evictions, 0);
        // Fetches == distinct blocks in both runs, so more devices must
        // not move the number.
        prop_assert_eq!(wide_report.upstream_fetches, narrow_report.upstream_fetches);
        prop_assert_eq!(wide_report.upstream_bytes, narrow_report.upstream_bytes);
        prop_assert_eq!(wide_report.cache_misses, wide_report.upstream_fetches);
    }
}

/// Satellite: a device that sleeps at *every possible* event boundary
/// mid-session still converges — same frames, same wire bytes, exactly
/// one install, bounded attempts — only its completion time moves.
#[test]
fn sleeping_at_every_event_boundary_still_converges() {
    let config = TopologyConfig {
        gateways: 1,
        devices_per_gateway: 1,
        ..base_config()
    };
    let sink = Arc::new(MemorySink::new());
    let tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
    let reference = run_dissemination_traced(&config, &tracer);
    assert_eq!(reference.completed, 1);
    assert_eq!(reference.installs, 1);

    // Every distinct record timestamp is a scheduler wake boundary.
    let mut boundaries: Vec<u64> = sink.drain().iter().map(|r| r.ts_micros).collect();
    boundaries.sort_unstable();
    boundaries.dedup();
    assert!(
        boundaries.len() >= 8,
        "expected a real session, got {} boundaries",
        boundaries.len()
    );

    for &at_micros in &boundaries {
        let napping = TopologyConfig {
            duty: Some(DutyCycle::Nap {
                at_micros,
                duration_micros: 750_000,
            }),
            ..config
        };
        let report = run_dissemination(&napping);
        assert_eq!(report.completed, 1, "nap at {at_micros}µs must converge");
        assert_eq!(report.gave_up, 0, "nap at {at_micros}µs");
        assert_eq!(
            report.installs, 1,
            "nap at {at_micros}µs must not duplicate the install"
        );
        assert_eq!(report.image_mismatches, 0, "nap at {at_micros}µs");
        // Zero loss: a sleep defers the next event, it never costs a
        // retransmission — the wire traffic is byte-for-byte that of
        // the always-awake run.
        assert_eq!(
            report.downstream_wire_bytes, reference.downstream_wire_bytes,
            "nap at {at_micros}µs changed wire traffic"
        );
        assert_eq!(
            report.events, reference.events,
            "nap at {at_micros}µs changed the event count"
        );
        assert!(report.makespan_micros >= reference.makespan_micros);
    }
}

/// Acceptance proof: dissemination reports, counter totals, and trace
/// bytes are identical at 1, 2, and 8 worker threads, on a config that
/// exercises loss, multi-campaign cache sharing, eviction pressure, and
/// duty cycling at once.
#[test]
fn dissemination_is_byte_identical_across_thread_counts() {
    let config = TopologyConfig {
        gateways: 6,
        devices_per_gateway: 5,
        mesh_hops: 2,
        loss_rate: 0.06,
        campaigns: 2,
        cache_blocks: 8,
        duty: Some(DutyCycle::Periodic {
            awake_micros: 500_000,
            asleep_micros: 250_000,
        }),
        max_poll_attempts: 48,
        ..base_config()
    };
    let mut reference: Option<(
        upkit_sim::DisseminationReport,
        upkit_trace::CountersSnapshot,
        String,
    )> = None;
    for threads in [1usize, 2, 8] {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
        let report = run_dissemination_traced(&TopologyConfig { threads, ..config }, &tracer);
        assert_eq!(report.completed, 30, "gave_up={}", report.gave_up);
        assert_eq!(report.image_mismatches, 0);
        let counters = tracer.counters().snapshot();
        let ndjson: String = sink
            .drain()
            .iter()
            .map(|r| r.to_ndjson())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(!ndjson.is_empty());
        match &reference {
            None => reference = Some((report, counters, ndjson)),
            Some((ref_report, ref_counters, ref_ndjson)) => {
                assert_eq!(&report, ref_report, "report diverged at {threads} threads");
                assert_eq!(
                    &counters, ref_counters,
                    "counters diverged at {threads} threads"
                );
                assert_eq!(
                    &ndjson, ref_ndjson,
                    "trace bytes diverged at {threads} threads"
                );
            }
        }
    }
}
