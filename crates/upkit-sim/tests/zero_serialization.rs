//! Pins the fix for the fleet-scaling hot-path bug: a device poll must
//! never serialize the full update image just to count wire bytes — the
//! size is precomputed on `PreparedUpdate` when the update is prepared.
//!
//! `upkit_manifest::image_serializations()` is a process-global counter,
//! so this test lives in its own integration-test binary (one process,
//! one test) where no other test can contribute serializations.

use upkit_sim::{run_rollout_sharded, DeviceModel, FleetConfig, ManifestMode, ShardedFleetConfig};

#[test]
fn a_poll_performs_zero_full_image_serializations() {
    let base = ShardedFleetConfig {
        fleet: FleetConfig {
            devices: 200,
            poll_fraction: 0.4,
            firmware_size: 8_000,
            differential: true,
            seed: 0x5E51A1,
        },
        shards: 4,
        threads: 2,
        device_model: DeviceModel::Lite,
        verify_signatures: true,
        manifest_mode: ManifestMode::PerDevice,
    };

    for manifest_mode in [ManifestMode::PerDevice, ManifestMode::Campaign] {
        let before = upkit_manifest::image_serializations();
        let report = run_rollout_sharded(&ShardedFleetConfig {
            manifest_mode,
            ..base
        });
        let after = upkit_manifest::image_serializations();
        assert_eq!(report.rounds.last().unwrap().updated, 200);
        assert_eq!(
            after - before,
            0,
            "{manifest_mode:?}: polling serialized the full image {} times \
             (wire sizes must come from PreparedUpdate::wire_bytes)",
            after - before
        );
    }
}
