//! Discrete-event update simulator for the UpKit reproduction.
//!
//! The paper evaluates UpKit on real boards (nRF52840, CC2650, CC2538)
//! running real OSes; this crate substitutes calibrated simulation while
//! keeping every byte of the update path real — actual signatures, actual
//! compression/patching, actual flash semantics. Only *time* and *energy*
//! are modeled, from per-platform constants:
//!
//! * [`firmware`] — synthetic firmware with controllable bsdiff
//!   similarity (OS-version-change vs app-change deltas, Fig. 8b).
//! * [`platform`] — board profiles: CPU clock, flash timings (calibrated
//!   to Fig. 8a's loading costs), radio links, power draw.
//! * [`scenario`] — [`run_scenario`]: one full update, returning the
//!   propagation/verification/loading breakdown of Fig. 8 plus energy and
//!   byte accounting.
//! * [`failure`] — power-loss injection at arbitrary flash-write offsets;
//!   asserts the never-brick property the bootloader's re-verification
//!   provides.
//! * [`lifetime`] — flash-wear accounting over long update chains (A/B vs
//!   static endurance).
//! * [`device`] / [`fleet`] — a self-contained simulated device (poll →
//!   verify → reboot lifecycle) and fleet-rollout campaigns built on it.
//! * [`events`] — [`run_event_rollout`]: the virtual-clock event scheduler
//!   interleaving thousands of in-flight stepped sessions with loss and
//!   retransmission on one timeline.
//! * [`campaign`] — [`run_campaign`]: staged fractional rollouts over
//!   channels with cohort targeting and automatic health halt + rollback,
//!   on bounded-skew per-shard virtual clocks.

#![warn(missing_docs)]

pub mod campaign;
pub mod device;
pub mod events;
pub mod failure;
pub mod firmware;
pub mod fleet;
pub mod lifetime;
pub mod platform;
pub mod scenario;
pub mod topology;

pub use campaign::{
    run_campaign, run_campaign_traced, CampaignConfig, CampaignHalt, CampaignReport,
    CampaignRoundStats, Channel, CohortFilter, FaultModel, HealthPolicy, Stage,
};
pub use device::{PollOutcome, SimDevice};
pub use events::{run_event_rollout, run_event_rollout_traced, EventFleetConfig, EventFleetReport};
pub use failure::{
    run_power_loss_at_event, run_power_loss_scenario, update_world, world_geometry, MultiUpdate,
    PowerLossReport, UpdateWorld, WorldConfig, WorldMode, DEFAULT_MAX_BOOTS,
};
pub use firmware::FirmwareGenerator;
pub use fleet::{
    run_rollout, run_rollout_sharded, run_rollout_sharded_traced, run_rollout_traced, DeviceModel,
    FleetConfig, FleetReport, ManifestMode, ShardedFleetConfig,
};
pub use lifetime::{run_lifetime, LifetimeMode, LifetimeReport};
pub use platform::{EnergyModel, PlatformProfile};
pub use scenario::{
    run_scenario, run_scenario_with_cut, Approach, CryptoChoice, PhaseBreakdown, ScenarioConfig,
    ScenarioResult, SlotMode, UpdateKind,
};
pub use topology::{
    run_dissemination, run_dissemination_traced, DisseminationReport, DutyCycle, GatewayStats,
    TopologyConfig,
};

#[cfg(test)]
mod tests {
    use super::*;
    use upkit_net::SessionOutcome;

    #[test]
    fn fig8a_push_scenario_shape() {
        let result = run_scenario(&ScenarioConfig::fig8a(Approach::Push));
        assert!(matches!(result.outcome, SessionOutcome::Complete));
        let p = result.phases;
        let total = p.total_micros() as f64 / 1e6;
        // Paper: 61.5 s total; propagation dominates; verification ~1.8 %.
        assert!((50.0..75.0).contains(&total), "total {total:.1}s");
        assert!(p.propagation_micros > p.loading_micros);
        assert!(p.loading_micros > p.verification_micros);
        let verif_frac = p.verification_micros as f64 / p.total_micros() as f64;
        assert!(
            (0.002..0.05).contains(&verif_frac),
            "verification {verif_frac:.4}"
        );
    }

    #[test]
    fn fig8a_pull_takes_longer_than_push_due_to_loading() {
        let push = run_scenario(&ScenarioConfig::fig8a(Approach::Push));
        let pull = run_scenario(&ScenarioConfig::fig8a(Approach::Pull));
        assert!(matches!(pull.outcome, SessionOutcome::Complete));
        // The paper's key observation: pull's total exceeds push's because
        // the pull build is larger, so the loading swap moves more sectors —
        // even though pull's propagation is slightly faster.
        assert!(
            pull.phases.loading_micros > push.phases.loading_micros,
            "pull loading {} <= push loading {}",
            pull.phases.loading_micros,
            push.phases.loading_micros
        );
        assert!(
            pull.phases.total_micros() > push.phases.total_micros(),
            "pull {} <= push {}",
            pull.phases.total_micros(),
            push.phases.total_micros()
        );
    }

    #[test]
    fn differential_update_scenario_completes_and_saves_bytes() {
        let mut cfg = ScenarioConfig::fig8a(Approach::Pull);
        cfg.slot_mode = SlotMode::AB;
        let full = run_scenario(&cfg);
        cfg.update_kind = UpdateKind::DiffAppChange { bytes: 1000 };
        let diff = run_scenario(&cfg);
        assert!(matches!(diff.outcome, SessionOutcome::Complete));
        assert!(diff.payload_bytes * 4 < full.payload_bytes);
        assert_eq!(diff.running_version, Some(upkit_manifest::Version(2)));
    }

    #[test]
    fn ab_loading_is_much_cheaper_than_static() {
        let mut cfg = ScenarioConfig::fig8a(Approach::Push);
        let static_run = run_scenario(&cfg);
        cfg.slot_mode = SlotMode::AB;
        let ab_run = run_scenario(&cfg);
        // Fig. 8c: ~92 % loading reduction.
        let reduction =
            1.0 - ab_run.phases.loading_micros as f64 / static_run.phases.loading_micros as f64;
        assert!(
            (0.80..0.99).contains(&reduction),
            "reduction {reduction:.3}"
        );
    }

    #[test]
    fn hsm_scenario_completes() {
        let mut cfg = ScenarioConfig::fig8a(Approach::Push);
        cfg.crypto = CryptoChoice::Hsm;
        cfg.firmware_size = 30_000;
        let result = run_scenario(&cfg);
        assert!(matches!(result.outcome, SessionOutcome::Complete));
    }

    #[test]
    fn tampered_scenario_rejects_early_and_saves_energy() {
        let honest = run_scenario(&ScenarioConfig::fig8a(Approach::Push));
        let mut cfg = ScenarioConfig::fig8a(Approach::Push);
        cfg.tamper = Some(upkit_net::Tamper::FlipBit { offset: 40 });
        let tampered = run_scenario(&cfg);
        assert!(matches!(
            tampered.outcome,
            SessionOutcome::RejectedAtManifest(_)
        ));
        // Early rejection: a small fraction of the bytes and energy.
        assert!(tampered.payload_bytes * 100 < honest.payload_bytes);
        assert!(tampered.energy_uj * 10.0 < honest.energy_uj);
        assert_eq!(tampered.running_version, Some(upkit_manifest::Version(1)));
    }

    #[test]
    fn cc2650_static_update_uses_external_staging_and_hsm() {
        // The paper's CC2650 deployment: internal flash too small for two
        // slots, so the staging slot lives on external SPI NOR, and the
        // ATECC508 holds the trust anchors.
        let cfg = ScenarioConfig {
            platform: PlatformProfile::cc2650(),
            approach: Approach::Pull,
            slot_mode: SlotMode::Static { swap: false },
            crypto: CryptoChoice::Hsm,
            firmware_size: 40_000,
            update_kind: UpdateKind::Full,
            tamper: None,
            seed: 0xCC26,
        };
        let result = run_scenario(&cfg);
        assert!(
            matches!(result.outcome, SessionOutcome::Complete),
            "{:?}",
            result.outcome
        );
        assert_eq!(result.running_version, Some(upkit_manifest::Version(2)));
        // Loading copies the image from external staging to internal.
        assert!(matches!(
            result.boot.as_ref().map(|b| b.action),
            Some(upkit_core::bootloader::BootAction::CopiedAndBooted)
        ));
    }

    #[test]
    fn cc2538_platform_scenario_completes() {
        let cfg = ScenarioConfig {
            platform: PlatformProfile::cc2538(),
            approach: Approach::Pull,
            slot_mode: SlotMode::AB,
            crypto: CryptoChoice::TinyDtls,
            firmware_size: 30_000,
            update_kind: UpdateKind::DiffOsChange,
            tamper: None,
            seed: 0x2538,
        };
        let result = run_scenario(&cfg);
        assert!(
            matches!(result.outcome, SessionOutcome::Complete),
            "{:?}",
            result.outcome
        );
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = run_scenario(&ScenarioConfig::fig8a(Approach::Push));
        let b = run_scenario(&ScenarioConfig::fig8a(Approach::Push));
        assert_eq!(a.phases, b.phases);
        assert_eq!(a.payload_bytes, b.payload_bytes);
    }
}
