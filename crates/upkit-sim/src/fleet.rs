//! Fleet rollout simulation: many devices adopting a release over polling
//! rounds.
//!
//! Models the deployment story of the paper's pull approach: every device
//! polls the update server on its own schedule, so a release propagates
//! through the fleet over several rounds. The experiment reports the
//! adoption curve and the total bytes served — where differential updates
//! shrink the server's egress by an order of magnitude.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use upkit_core::generation::{UpdateServer, VendorServer};
use upkit_crypto::ecdsa::SigningKey;
use upkit_manifest::Version;

use crate::device::{PollOutcome, SimDevice, APP_ID, LINK_OFFSET};
use crate::firmware::FirmwareGenerator;

/// Parameters of a rollout campaign.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Number of devices.
    pub devices: u32,
    /// Fraction (0..=1) of the fleet that polls in each round.
    pub poll_fraction: f64,
    /// Firmware size in bytes.
    pub firmware_size: usize,
    /// Whether devices advertise differential support.
    pub differential: bool,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            devices: 50,
            poll_fraction: 0.3,
            firmware_size: 20_000,
            differential: true,
            seed: 0xF1EE7,
        }
    }
}

/// Per-round adoption snapshot.
#[derive(Clone, Copy, Debug)]
pub struct RoundStats {
    /// Devices running the new version after this round.
    pub updated: u32,
    /// Wire bytes served this round.
    pub wire_bytes: u64,
}

/// Result of a rollout campaign.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Adoption per round, until the fleet converged.
    pub rounds: Vec<RoundStats>,
    /// Total bytes the server pushed over the campaign.
    pub total_wire_bytes: u64,
}

impl FleetReport {
    /// Rounds until every device ran the new version.
    #[must_use]
    pub fn rounds_to_converge(&self) -> usize {
        self.rounds.len()
    }
}

/// Runs a rollout of version 2 across a fleet provisioned at version 1.
///
/// # Panics
///
/// Panics if the campaign fails to converge within 10× the expected rounds
/// (would indicate an update-path bug, not an unlucky seed — polling is
/// sampled without replacement).
#[must_use]
pub fn run_rollout(config: &FleetConfig) -> FleetReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));

    let generator = FirmwareGenerator::new(config.seed ^ 0xF00D);
    let v1 = generator.base(config.firmware_size);
    let v2 = generator.os_version_change(&v1);
    server.publish(vendor.release(v1.clone(), Version(1), LINK_OFFSET, APP_ID));

    let mut devices: Vec<SimDevice> = (0..config.devices)
        .map(|i| {
            SimDevice::provision_with_options(
                0x1000 + i,
                &v1,
                &vendor,
                &server,
                config.differential,
            )
        })
        .collect();

    server.publish(vendor.release(v2, Version(2), LINK_OFFSET, APP_ID));

    let per_round = ((f64::from(config.devices) * config.poll_fraction).ceil() as usize).max(1);
    let mut rounds = Vec::new();
    let mut total_wire_bytes = 0u64;
    let max_rounds = (config.devices as usize / per_round + 2) * 10;

    while devices.iter().any(|d| d.installed_version() < Version(2)) {
        assert!(
            rounds.len() < max_rounds,
            "rollout failed to converge after {} rounds",
            rounds.len()
        );
        // Sample which devices poll this round (pending devices first, as
        // real fleets poll independently of update state; updated devices
        // polling is a cheap no-op we also exercise).
        let mut wire_bytes = 0u64;
        let mut indices: Vec<usize> = (0..devices.len()).collect();
        for _ in 0..per_round {
            if indices.is_empty() {
                break;
            }
            let pick = rng.random_range(0..indices.len());
            let device = &mut devices[indices.swap_remove(pick)];
            match device.poll(&server).expect("healthy fleet") {
                PollOutcome::Updated { wire_bytes: b, .. } => wire_bytes += b,
                PollOutcome::AlreadyCurrent => {}
                // Non-differential devices advertise version 0, so the
                // server re-offers the latest release to devices that are
                // already current; the agent early-rejects it as stale at
                // the manifest — exactly the paper's freshness check.
                PollOutcome::Rejected => {
                    assert!(
                        device.installed_version() >= Version(2),
                        "pending device rejected an honest update"
                    );
                }
            }
        }
        total_wire_bytes += wire_bytes;
        rounds.push(RoundStats {
            updated: devices
                .iter()
                .filter(|d| d.installed_version() >= Version(2))
                .count() as u32,
            wire_bytes,
        });
    }

    FleetReport {
        rounds,
        total_wire_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollout_converges_and_adoption_is_monotone() {
        let report = run_rollout(&FleetConfig {
            devices: 20,
            poll_fraction: 0.4,
            firmware_size: 8_000,
            differential: true,
            seed: 700,
        });
        assert!(!report.rounds.is_empty());
        let final_round = report.rounds.last().unwrap();
        assert_eq!(final_round.updated, 20);
        for pair in report.rounds.windows(2) {
            assert!(pair[1].updated >= pair[0].updated, "adoption regressed");
        }
    }

    #[test]
    fn differential_rollout_serves_far_fewer_bytes() {
        let base = FleetConfig {
            devices: 15,
            poll_fraction: 0.5,
            firmware_size: 20_000,
            differential: true,
            seed: 701,
        };
        let diff = run_rollout(&base);
        let full = run_rollout(&FleetConfig {
            differential: false,
            ..base
        });
        assert!(
            diff.total_wire_bytes * 2 < full.total_wire_bytes,
            "diff {} vs full {}",
            diff.total_wire_bytes,
            full.total_wire_bytes
        );
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let config = FleetConfig {
            devices: 10,
            ..FleetConfig::default()
        };
        let a = run_rollout(&config);
        let b = run_rollout(&config);
        assert_eq!(a.total_wire_bytes, b.total_wire_bytes);
        assert_eq!(a.rounds_to_converge(), b.rounds_to_converge());
    }
}
