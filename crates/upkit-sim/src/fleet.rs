//! Fleet rollout simulation: many devices adopting a release over polling
//! rounds.
//!
//! Models the deployment story of the paper's pull approach: every device
//! polls the update server on its own schedule, so a release propagates
//! through the fleet over several rounds. The experiment reports the
//! adoption curve and the total bytes served — where differential updates
//! shrink the server's egress by an order of magnitude.
//!
//! Two entry points:
//!
//! * [`run_rollout`] — the sequential simulator over full [`SimDevice`]s
//!   (flash + agent + bootloader each).
//! * [`run_rollout_sharded`] — the fleet split into shards, each with its
//!   own RNG stream derived from the fleet seed, executed across worker
//!   threads. Results depend only on the configuration, never on the
//!   thread count, and a single-shard run reproduces [`run_rollout`]
//!   byte for byte. With [`DeviceModel::Lite`] devices (protocol-faithful
//!   but without per-device flash), campaigns scale to 100k–1M devices.
//!
//! # Scaling
//!
//! Shards never share mutable state, so the sharded rollout is
//! embarrassingly parallel: each shard runs **to completion** on whichever
//! worker thread claims it from a work-stealing queue — there is no
//! per-round stop-the-world barrier. Per-round statistics and per-round
//! trace buffers are recorded shard-locally and merged once, after the
//! join, in (round, shard-index) order, which keeps reports, counters, and
//! traces byte-identical at any thread count.
//!
//! The per-poll hot path is allocation- and crypto-lean:
//!
//! * wire bytes come from [`PreparedUpdate::wire_bytes`], precomputed at
//!   preparation time (a poll never serializes the full image — pinned by
//!   `tests/zero_serialization.rs`);
//! * under [`ManifestMode::Campaign`] the server signs one broadcast
//!   manifest per transition and each shard verifies it **once** through a
//!   digest-keyed memo ([`VerifyMemo`]), so ECDSA cost scales with
//!   *distinct manifests × shards*, not with fleet size.
//!
//! Both entry points advance each polled device one *whole* update at a
//! time. For campaigns where transfers must overlap on a common virtual
//! timeline — realistic timing, loss, and retransmission — use the
//! event-driven scheduler in [`crate::events`]. For staged fractional
//! rollouts with channels, cohort targeting, and automatic health halts,
//! use [`crate::campaign`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use upkit_compress::decompress;
use upkit_core::generation::{PreparedUpdate, UpdateServer, VendorServer};
use upkit_crypto::ecdsa::{SigningKey, VerifyingKey};
use upkit_crypto::sha256::sha256;
use upkit_manifest::{DeviceToken, SignedManifest, Version};
use upkit_trace::{Counters, CountersSnapshot, Event, MemorySink, TraceRecord, Tracer};

use crate::device::{PollOutcome, SimDevice, APP_ID, LINK_OFFSET};
use crate::firmware::FirmwareGenerator;

/// Parameters of a rollout campaign.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Number of devices.
    pub devices: u32,
    /// Fraction (0..=1) of the fleet that polls in each round.
    pub poll_fraction: f64,
    /// Firmware size in bytes.
    pub firmware_size: usize,
    /// Whether devices advertise differential support.
    pub differential: bool,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            devices: 50,
            poll_fraction: 0.3,
            firmware_size: 20_000,
            differential: true,
            seed: 0xF1EE7,
        }
    }
}

/// Per-round adoption snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundStats {
    /// Devices running the new version after this round.
    pub updated: u32,
    /// Wire bytes served this round.
    pub wire_bytes: u64,
}

/// Result of a rollout campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetReport {
    /// Adoption per round, until the fleet converged.
    pub rounds: Vec<RoundStats>,
    /// Total bytes the server pushed over the campaign.
    pub total_wire_bytes: u64,
}

impl FleetReport {
    /// Rounds until every device ran the new version.
    #[must_use]
    pub fn rounds_to_converge(&self) -> usize {
        self.rounds.len()
    }
}

/// Runs a rollout of version 2 across a fleet provisioned at version 1.
///
/// # Panics
///
/// Panics if the campaign fails to converge within 10× the expected rounds
/// (would indicate an update-path bug, not an unlucky seed — polling is
/// sampled without replacement).
#[must_use]
pub fn run_rollout(config: &FleetConfig) -> FleetReport {
    run_rollout_traced(config, &Tracer::disabled())
}

/// [`run_rollout`] with observability: per-round [`Event::RolloutRound`]
/// records, per-device completions, and served-byte counters are routed
/// through `tracer`.
#[must_use]
pub fn run_rollout_traced(config: &FleetConfig, tracer: &Tracer) -> FleetReport {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));

    let generator = FirmwareGenerator::new(config.seed ^ 0xF00D);
    let v1 = generator.base(config.firmware_size);
    let v2 = generator.os_version_change(&v1);
    server.publish(vendor.release(v1.clone(), Version(1), LINK_OFFSET, APP_ID));

    let mut devices: Vec<SimDevice> = (0..config.devices)
        .map(|i| {
            SimDevice::provision_with_options(
                0x1000 + i,
                &v1,
                &vendor,
                &server,
                config.differential,
            )
        })
        .collect();

    server.publish(vendor.release(v2, Version(2), LINK_OFFSET, APP_ID));

    let per_round = ((f64::from(config.devices) * config.poll_fraction).ceil() as usize).max(1);
    let mut rounds = Vec::new();
    let mut total_wire_bytes = 0u64;
    let max_rounds = (config.devices as usize / per_round + 2) * 10;

    while devices.iter().any(|d| d.installed_version() < Version(2)) {
        assert!(
            rounds.len() < max_rounds,
            "rollout failed to converge after {} rounds",
            rounds.len()
        );
        // Sample which devices poll this round (pending devices first, as
        // real fleets poll independently of update state; updated devices
        // polling is a cheap no-op we also exercise).
        let mut wire_bytes = 0u64;
        let mut indices: Vec<usize> = (0..devices.len()).collect();
        for _ in 0..per_round {
            if indices.is_empty() {
                break;
            }
            let pick = rng.random_range(0..indices.len());
            let device = &mut devices[indices.swap_remove(pick)];
            match device.poll(&server).expect("healthy fleet") {
                PollOutcome::Updated { wire_bytes: b, .. } => {
                    wire_bytes += b;
                    let id = u64::from(device.device_id);
                    tracer.emit(|| Event::DeviceComplete {
                        device: id,
                        outcome: "complete",
                    });
                }
                PollOutcome::AlreadyCurrent => {}
                // Non-differential devices advertise version 0, so the
                // server re-offers the latest release to devices that are
                // already current; the agent early-rejects it as stale at
                // the manifest — exactly the paper's freshness check.
                PollOutcome::Rejected => {
                    assert!(
                        device.installed_version() >= Version(2),
                        "pending device rejected an honest update"
                    );
                }
            }
        }
        total_wire_bytes += wire_bytes;
        Counters::add(&tracer.counters().link_bytes_to_device, wire_bytes);
        let updated = devices
            .iter()
            .filter(|d| d.installed_version() >= Version(2))
            .count() as u32;
        let round = rounds.len() as u64 + 1;
        tracer.emit(|| Event::RolloutRound {
            round,
            completed: u64::from(updated),
        });
        rounds.push(RoundStats {
            updated,
            wire_bytes,
        });
    }

    FleetReport {
        rounds,
        total_wire_bytes,
    }
}

/// Which device implementation a sharded rollout simulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceModel {
    /// Full [`SimDevice`]s: per-device flash, agent FSM, and bootloader.
    /// Highest fidelity, ≥64 KiB of simulated flash per device.
    Faithful,
    /// Protocol-faithful lightweight devices: same token sequence,
    /// signature/digest verification, decompression, and patching as the
    /// full device, but no per-device flash or boot simulation — a few
    /// dozen bytes per device, enabling 100k–1M-device campaigns.
    Lite,
}

/// How the update server signs what lite devices receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ManifestMode {
    /// The paper's point-to-point design: every response is signed over
    /// the requesting device's token (ID + nonce), granting per-request
    /// freshness. Every manifest is distinct, so every device must run
    /// its own ECDSA verifications — one server signature and two device
    /// verifies **per poll**.
    PerDevice,
    /// Omaha-style campaign propagation: the server signs one broadcast
    /// manifest per version transition (token fields zero) and serves the
    /// identical response to every device on that base. Each shard then
    /// verifies each distinct manifest exactly once through a
    /// digest-keyed [`VerifyMemo`]; downgrade protection is preserved by
    /// the manifest version-monotonicity check every device performs
    /// before trusting anything else. Wire sizes are unchanged (the
    /// manifest is fixed-size), so reports are byte-identical to
    /// [`ManifestMode::PerDevice`] — only the crypto count scales
    /// differently.
    ///
    /// [`DeviceModel::Faithful`] devices always run the full per-token
    /// pull session; this mode governs lite devices.
    Campaign,
}

/// Parameters of a sharded rollout campaign.
#[derive(Clone, Copy, Debug)]
pub struct ShardedFleetConfig {
    /// The campaign itself.
    pub fleet: FleetConfig,
    /// Number of independent shards the fleet is split into. Results
    /// depend on this value (each shard has its own RNG stream), but not
    /// on how shards are scheduled onto threads.
    pub shards: u32,
    /// Worker threads to spread the shards over. Any value produces
    /// identical results; only wall-clock time changes.
    pub threads: usize,
    /// Device implementation to simulate.
    pub device_model: DeviceModel,
    /// Whether lite devices check both manifest signatures on every
    /// update (full devices always do). Keep `true` for fidelity; `false`
    /// isolates server-side cost in benchmarks.
    pub verify_signatures: bool,
    /// Per-token or broadcast manifest signing for lite devices.
    pub manifest_mode: ManifestMode,
}

impl Default for ShardedFleetConfig {
    fn default() -> Self {
        Self {
            fleet: FleetConfig::default(),
            shards: 4,
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            device_model: DeviceModel::Faithful,
            verify_signatures: true,
            manifest_mode: ManifestMode::PerDevice,
        }
    }
}

/// Everything a polling device reads, shared by all shards and threads.
pub(crate) struct FleetEnv<'a> {
    pub(crate) server: &'a UpdateServer,
    pub(crate) vendor_key: VerifyingKey,
    pub(crate) server_key: VerifyingKey,
    /// The v1 image every device was provisioned with (the old image for
    /// differential patching on lite devices).
    pub(crate) base_image: &'a [u8],
    pub(crate) verify_signatures: bool,
    pub(crate) manifest_mode: ManifestMode,
}

/// Digest-keyed memo of signed-manifest verification verdicts.
///
/// Keyed by the SHA-256 of the 166-byte signed-manifest wire encoding, so
/// two byte-identical broadcast manifests verify once. Each shard owns its
/// own memo: the counter totals (`sig_verifications`,
/// `sig_verify_memo_hits`) and any trace events stay a pure function of
/// the configuration, never of which thread raced first.
#[derive(Default)]
pub(crate) struct VerifyMemo {
    verdicts: HashMap<[u8; 32], bool>,
}

impl VerifyMemo {
    /// Verifies `signed` against the trust anchors, consulting the memo
    /// first. Charges two `sig_verifications` on a miss (vendor + server
    /// signature) and two `sig_verify_memo_hits` on a hit.
    pub(crate) fn verify(
        &mut self,
        signed: &SignedManifest,
        vendor_key: &VerifyingKey,
        server_key: &VerifyingKey,
        tracer: &Tracer,
    ) -> bool {
        let key = sha256(&signed.to_bytes());
        if let Some(&verdict) = self.verdicts.get(&key) {
            Counters::add(&tracer.counters().sig_verify_memo_hits, 2);
            return verdict;
        }
        Counters::add(&tracer.counters().sig_verifications, 2);
        let verdict = signed.verify_with_keys(vendor_key, server_key).is_ok();
        self.verdicts.insert(key, verdict);
        verdict
    }
}

/// Shard-local polling context: the verification memo plus a cache of the
/// server's broadcast campaign responses keyed by the advertised version,
/// so a lite poll in campaign mode touches no server-side locks at all
/// after the first request per (shard, version).
pub(crate) struct ShardCtx {
    pub(crate) memo: VerifyMemo,
    responses: HashMap<u16, Option<Arc<PreparedUpdate>>>,
    /// Shard-local tracer: counters always accumulate here; events land in
    /// `sink` (when tracing is on) and are merged into the campaign tracer
    /// in (round, shard-index) order, so the merged trace is independent
    /// of how shards were scheduled onto threads.
    pub(crate) tracer: Tracer,
    pub(crate) sink: Option<Arc<MemorySink>>,
}

impl ShardCtx {
    pub(crate) fn new(tracing_enabled: bool) -> Self {
        let (tracer, sink) = if tracing_enabled {
            let sink = Arc::new(MemorySink::new());
            (Tracer::with_sink(Box::new(Arc::clone(&sink))), Some(sink))
        } else {
            (Tracer::disabled(), None)
        };
        Self {
            memo: VerifyMemo::default(),
            responses: HashMap::new(),
            tracer,
            sink,
        }
    }

    /// The broadcast response the server would serve a device advertising
    /// `version`, fetched once per shard and shared thereafter.
    fn campaign_response(
        &mut self,
        env: &FleetEnv<'_>,
        version: Version,
    ) -> Option<Arc<PreparedUpdate>> {
        self.responses
            .entry(version.0)
            .or_insert_with(|| env.server.prepare_campaign_update(version))
            .clone()
    }

    /// Drains the per-round trace delta: buffered records (when tracing)
    /// plus the counter totals accumulated since the last drain.
    pub(crate) fn drain_round(&mut self) -> (CountersSnapshot, Vec<TraceRecord>) {
        let records = self
            .sink
            .as_ref()
            .map_or_else(Vec::new, |sink| sink.drain());
        let counters = self.tracer.counters().snapshot();
        self.tracer.counters().reset();
        (counters, records)
    }
}

/// A protocol-faithful device without per-device flash state.
pub(crate) struct LiteDevice {
    pub(crate) device_id: u32,
    nonce_counter: u32,
    pub(crate) installed_version: Version,
    supports_differential: bool,
}

impl LiteDevice {
    pub(crate) fn provision(device_id: u32, supports_differential: bool) -> Self {
        Self {
            device_id,
            // Same per-device nonce schedule as `SimDevice`.
            nonce_counter: device_id.wrapping_mul(2_654_435_761),
            installed_version: Version(1),
            supports_differential,
        }
    }

    /// Roll the running version back to `to` (campaign halt recovery).
    pub(crate) fn roll_back_to(&mut self, to: Version) {
        self.installed_version = to;
    }

    /// One poll: token → server → verify → (decompress → patch) → digest
    /// check. Mirrors `SimDevice::poll` outcomes exactly for an honest
    /// server in the v1→v2 campaign.
    pub(crate) fn poll(&mut self, env: &FleetEnv<'_>, ctx: &mut ShardCtx) -> PollOutcome {
        self.nonce_counter = self.nonce_counter.wrapping_add(0x9E37_79B9) | 1;
        let advertised = if self.supports_differential {
            self.installed_version
        } else {
            Version(0)
        };
        match env.manifest_mode {
            ManifestMode::PerDevice => {
                let token = DeviceToken {
                    device_id: self.device_id,
                    nonce: self.nonce_counter,
                    current_version: advertised,
                };
                let Some(prepared) = env.server.prepare_update(&token) else {
                    return PollOutcome::AlreadyCurrent;
                };
                self.accept(env, ctx, &prepared)
            }
            ManifestMode::Campaign => {
                let Some(prepared) = ctx.campaign_response(env, advertised) else {
                    return PollOutcome::AlreadyCurrent;
                };
                self.accept(env, ctx, &prepared)
            }
        }
    }

    /// The device half of a poll, shared by both manifest modes: freshness
    /// check, (memoized) dual-signature verification, decompression,
    /// patching, and the firmware digest check.
    fn accept(
        &mut self,
        env: &FleetEnv<'_>,
        ctx: &mut ShardCtx,
        prepared: &PreparedUpdate,
    ) -> PollOutcome {
        // Precomputed at preparation time — a poll never serializes the
        // full image just to count wire bytes.
        let wire_bytes = prepared.wire_bytes;
        let signed = &prepared.image.signed_manifest;
        let manifest = signed.manifest;

        // Freshness: a re-offer of a version we already run is stale
        // (non-differential devices advertise version 0 and see these).
        if manifest.version <= self.installed_version {
            return PollOutcome::Rejected;
        }
        if env.verify_signatures {
            let ok = match env.manifest_mode {
                // Per-token manifests are distinct per request — a memo
                // could never hit, so verify directly.
                ManifestMode::PerDevice => {
                    Counters::add(&ctx.tracer.counters().sig_verifications, 2);
                    signed
                        .verify_with_keys(&env.vendor_key, &env.server_key)
                        .is_ok()
                }
                ManifestMode::Campaign => {
                    ctx.memo
                        .verify(signed, &env.vendor_key, &env.server_key, &ctx.tracer)
                }
            };
            if !ok {
                return PollOutcome::Rejected;
            }
        }

        let firmware = if manifest.old_version.0 == 0 {
            prepared.image.payload.clone()
        } else {
            // Only v1 is ever a differential base in this campaign.
            assert_eq!(manifest.old_version, Version(1), "unexpected patch base");
            let Ok(patch_stream) = decompress(&prepared.image.payload) else {
                return PollOutcome::Rejected;
            };
            let Ok(firmware) = upkit_delta::patch(env.base_image, &patch_stream) else {
                return PollOutcome::Rejected;
            };
            firmware
        };
        if sha256(&firmware) != manifest.digest || firmware.len() as u32 != manifest.size {
            return PollOutcome::Rejected;
        }

        self.installed_version = manifest.version;
        PollOutcome::Updated {
            to: manifest.version,
            wire_bytes,
        }
    }
}

/// One device of a sharded fleet.
enum FleetDevice {
    Faithful(Box<SimDevice>),
    Lite(LiteDevice),
}

impl FleetDevice {
    fn installed_version(&self) -> Version {
        match self {
            Self::Faithful(device) => device.installed_version(),
            Self::Lite(device) => device.installed_version,
        }
    }

    fn poll(&mut self, env: &FleetEnv<'_>, ctx: &mut ShardCtx) -> PollOutcome {
        match self {
            Self::Faithful(device) => device.poll(env.server).expect("healthy fleet"),
            Self::Lite(device) => device.poll(env, ctx),
        }
    }
}

/// An independent slice of the fleet with its own RNG stream.
struct Shard {
    rng: StdRng,
    devices: Vec<FleetDevice>,
    per_round: usize,
    ctx: ShardCtx,
}

/// Everything one shard produced: its per-round statistics and, per
/// round, the trace delta (counter snapshot + buffered records) to merge
/// in deterministic (round, shard-index) order after the parallel join.
struct ShardHistory {
    device_count: u32,
    rounds: Vec<RoundStats>,
    trace: Vec<(CountersSnapshot, Vec<TraceRecord>)>,
}

impl Shard {
    fn converged(&self) -> bool {
        self.devices
            .iter()
            .all(|d| d.installed_version() >= Version(2))
    }

    /// One polling round over this shard — the same sampling-without-
    /// replacement loop as the sequential simulator, restricted to the
    /// shard's devices and driven by the shard's own RNG.
    fn run_round(&mut self, env: &FleetEnv<'_>) -> RoundStats {
        let mut wire_bytes = 0u64;
        let mut indices: Vec<usize> = (0..self.devices.len()).collect();
        for _ in 0..self.per_round {
            if indices.is_empty() {
                break;
            }
            let pick = self.rng.random_range(0..indices.len());
            let device = &mut self.devices[indices.swap_remove(pick)];
            let device_id = u64::from(match device {
                FleetDevice::Faithful(d) => d.device_id,
                FleetDevice::Lite(d) => d.device_id,
            });
            match device.poll(env, &mut self.ctx) {
                PollOutcome::Updated { wire_bytes: b, .. } => {
                    wire_bytes += b;
                    self.ctx.tracer.emit(|| Event::DeviceComplete {
                        device: device_id,
                        outcome: "complete",
                    });
                }
                PollOutcome::AlreadyCurrent => {}
                PollOutcome::Rejected => {
                    assert!(
                        device.installed_version() >= Version(2),
                        "pending device rejected an honest update"
                    );
                }
            }
        }
        Counters::add(&self.ctx.tracer.counters().link_bytes_to_device, wire_bytes);
        RoundStats {
            updated: self
                .devices
                .iter()
                .filter(|d| d.installed_version() >= Version(2))
                .count() as u32,
            wire_bytes,
        }
    }

    /// Runs this shard's rounds until every device converged, recording
    /// per-round statistics and trace deltas. Rounds past a shard's own
    /// convergence are pure no-ops in the observable output (polls of
    /// current devices serve no bytes and emit nothing), so a shard can
    /// stop at its own convergence without changing the merged report.
    fn run_to_convergence(mut self, env: &FleetEnv<'_>) -> ShardHistory {
        let max_rounds = (self.devices.len() / self.per_round + 2) * 10;
        let mut rounds = Vec::new();
        let mut trace = Vec::new();
        while !self.converged() {
            assert!(
                rounds.len() < max_rounds,
                "shard failed to converge after {} rounds",
                rounds.len()
            );
            rounds.push(self.run_round(env));
            trace.push(self.ctx.drain_round());
        }
        ShardHistory {
            device_count: self.devices.len() as u32,
            rounds,
            trace,
        }
    }
}

/// Runs a v1→v2 rollout split into shards executed across threads.
///
/// Determinism: each shard's RNG stream is fixed by `(seed, shard index)`
/// alone, shards never share mutable state, and per-round statistics are
/// aggregated by order-independent sums — so the report is a pure function
/// of the configuration, whatever `threads` is. A single-shard run draws
/// from the same stream as [`run_rollout`] and reproduces its report
/// exactly (covered by tests).
///
/// # Panics
///
/// Panics if the campaign fails to converge within 10× the expected
/// rounds, like [`run_rollout`].
#[must_use]
pub fn run_rollout_sharded(config: &ShardedFleetConfig) -> FleetReport {
    run_rollout_sharded_traced(config, &Tracer::disabled())
}

/// [`run_rollout_sharded`] with observability. Every shard buffers its
/// events in a shard-local [`MemorySink`] and snapshots its counters per
/// round; after the parallel join the buffers are merged into `tracer` in
/// (round, shard-index) order, so the merged trace (and the counter
/// totals) are identical whatever `threads` is.
#[must_use]
pub fn run_rollout_sharded_traced(config: &ShardedFleetConfig, tracer: &Tracer) -> FleetReport {
    let fleet = &config.fleet;
    let mut rng = StdRng::seed_from_u64(fleet.seed);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));

    let generator = FirmwareGenerator::new(fleet.seed ^ 0xF00D);
    let v1 = generator.base(fleet.firmware_size);
    let v2 = generator.os_version_change(&v1);
    server.publish(vendor.release(v1.clone(), Version(1), LINK_OFFSET, APP_ID));

    let device_count = fleet.devices as usize;
    let shard_count = (config.shards.max(1) as usize).min(device_count.max(1));
    let threads = config.threads.max(1).min(shard_count);

    // Contiguous device ranges per shard; device IDs match the sequential
    // simulator's (0x1000 + global index).
    let base_len = device_count / shard_count;
    let remainder = device_count % shard_count;
    let mut starts = Vec::with_capacity(shard_count + 1);
    let mut cursor = 0usize;
    for index in 0..shard_count {
        starts.push(cursor);
        cursor += base_len + usize::from(index < remainder);
    }
    starts.push(device_count);

    // Per-shard RNG streams. A single shard *is* the sequential fleet, so
    // it continues the master stream (key generation already consumed
    // from it) and reproduces `run_rollout` exactly; multiple shards get
    // independent streams derived from the fleet seed and the shard index.
    let mut shard_rngs: Vec<StdRng> = if shard_count == 1 {
        vec![rng]
    } else {
        (0..shard_count)
            .map(|index| {
                StdRng::seed_from_u64(
                    fleet
                        .seed
                        .wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(index as u64 + 1)),
                )
            })
            .collect()
    };

    // Provision shard by shard, in parallel: provisioning is per-device
    // deterministic (no RNG), so threading cannot change the outcome.
    let tracing_enabled = tracer.is_enabled();
    let shards: Vec<Shard> = crossbeam::thread::scope(|scope| {
        let server = &server;
        let vendor = &vendor;
        let v1 = &v1;
        let mut handles = Vec::with_capacity(shard_count);
        for index in 0..shard_count {
            let rng = shard_rngs.pop().expect("one rng per shard");
            // `shard_rngs` is drained back-to-front; build back-to-front
            // too so shard `index` keeps its own stream.
            let index = shard_count - 1 - index;
            let (start, end) = (starts[index], starts[index + 1]);
            let model = config.device_model;
            let differential = fleet.differential;
            let poll_fraction = fleet.poll_fraction;
            handles.push(scope.spawn(move |_| {
                let devices: Vec<FleetDevice> = (start..end)
                    .map(|i| {
                        let device_id = 0x1000 + i as u32;
                        match model {
                            DeviceModel::Faithful => {
                                FleetDevice::Faithful(Box::new(SimDevice::provision_with_options(
                                    device_id,
                                    v1,
                                    vendor,
                                    server,
                                    differential,
                                )))
                            }
                            DeviceModel::Lite => {
                                FleetDevice::Lite(LiteDevice::provision(device_id, differential))
                            }
                        }
                    })
                    .collect();
                let per_round = (((end - start) as f64 * poll_fraction).ceil() as usize).max(1);
                (
                    index,
                    Shard {
                        rng,
                        devices,
                        per_round,
                        ctx: ShardCtx::new(tracing_enabled),
                    },
                )
            }));
        }
        let mut shards: Vec<(usize, Shard)> = handles
            .into_iter()
            .map(|h| h.join().expect("provisioning worker"))
            .collect();
        shards.sort_by_key(|(index, _)| *index);
        shards.into_iter().map(|(_, shard)| shard).collect()
    })
    .expect("provisioning workers do not panic");

    server.publish(vendor.release(v2, Version(2), LINK_OFFSET, APP_ID));

    let env = FleetEnv {
        server: &server,
        vendor_key: vendor.verifying_key(),
        server_key: server.verifying_key(),
        base_image: &v1,
        verify_signatures: config.verify_signatures,
        manifest_mode: config.manifest_mode,
    };

    // Work-stealing execution: each worker claims whole shards from a
    // shared queue and runs them to convergence — no per-round barrier,
    // one join at the end. Shards are fully independent, so any claim
    // order produces the same per-shard histories.
    let mut histories: Vec<(usize, ShardHistory)> = {
        let slots: Vec<Mutex<Option<Shard>>> =
            shards.into_iter().map(|s| Mutex::new(Some(s))).collect();
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            let env = &env;
            let slots = &slots;
            let next = &next;
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(move |_| {
                        let mut done = Vec::new();
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= slots.len() {
                                break;
                            }
                            let shard = slots[index]
                                .lock()
                                .expect("shard slot lock")
                                .take()
                                .expect("each shard claimed exactly once");
                            done.push((index, shard.run_to_convergence(env)));
                        }
                        done
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("shard worker"))
                .collect()
        })
        .expect("shard workers do not panic")
    };
    histories.sort_by_key(|(index, _)| *index);

    // Deterministic merge: rounds in order, shards in index order within
    // each round — the same sequence the old per-round barrier produced,
    // now paid once instead of every round. Shards that converged early
    // contribute their full device count and no traffic to later rounds,
    // exactly what polling already-current devices produces.
    let total_rounds = histories
        .iter()
        .map(|(_, h)| h.rounds.len())
        .max()
        .unwrap_or(0);
    let mut rounds = Vec::with_capacity(total_rounds);
    let mut total_wire_bytes = 0u64;
    for round_index in 0..total_rounds {
        let mut updated = 0u32;
        let mut wire_bytes = 0u64;
        for (_, history) in &histories {
            match history.rounds.get(round_index) {
                Some(stats) => {
                    updated += stats.updated;
                    wire_bytes += stats.wire_bytes;
                }
                None => updated += history.device_count,
            }
            if let Some((counters, records)) = history.trace.get(round_index) {
                tracer.absorb(counters, records);
            }
        }
        total_wire_bytes += wire_bytes;
        let round = round_index as u64 + 1;
        tracer.emit(|| Event::RolloutRound {
            round,
            completed: u64::from(updated),
        });
        rounds.push(RoundStats {
            updated,
            wire_bytes,
        });
    }

    FleetReport {
        rounds,
        total_wire_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollout_converges_and_adoption_is_monotone() {
        let report = run_rollout(&FleetConfig {
            devices: 20,
            poll_fraction: 0.4,
            firmware_size: 8_000,
            differential: true,
            seed: 700,
        });
        assert!(!report.rounds.is_empty());
        let final_round = report.rounds.last().unwrap();
        assert_eq!(final_round.updated, 20);
        for pair in report.rounds.windows(2) {
            assert!(pair[1].updated >= pair[0].updated, "adoption regressed");
        }
    }

    #[test]
    fn differential_rollout_serves_far_fewer_bytes() {
        let base = FleetConfig {
            devices: 15,
            poll_fraction: 0.5,
            firmware_size: 20_000,
            differential: true,
            seed: 701,
        };
        let diff = run_rollout(&base);
        let full = run_rollout(&FleetConfig {
            differential: false,
            ..base
        });
        assert!(
            diff.total_wire_bytes * 2 < full.total_wire_bytes,
            "diff {} vs full {}",
            diff.total_wire_bytes,
            full.total_wire_bytes
        );
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let config = FleetConfig {
            devices: 10,
            ..FleetConfig::default()
        };
        let a = run_rollout(&config);
        let b = run_rollout(&config);
        assert_eq!(a.total_wire_bytes, b.total_wire_bytes);
        assert_eq!(a.rounds_to_converge(), b.rounds_to_converge());
    }

    #[test]
    fn single_shard_reproduces_sequential_rollout_exactly() {
        let fleet = FleetConfig {
            devices: 12,
            poll_fraction: 0.4,
            firmware_size: 6_000,
            differential: true,
            seed: 702,
        };
        let sequential = run_rollout(&fleet);
        let sharded = run_rollout_sharded(&ShardedFleetConfig {
            fleet,
            shards: 1,
            threads: 1,
            device_model: DeviceModel::Faithful,
            verify_signatures: true,
            manifest_mode: ManifestMode::PerDevice,
        });
        assert_eq!(sequential, sharded);
    }

    #[test]
    fn thread_count_does_not_change_sharded_results() {
        let base = ShardedFleetConfig {
            fleet: FleetConfig {
                devices: 18,
                poll_fraction: 0.5,
                firmware_size: 5_000,
                differential: true,
                seed: 703,
            },
            shards: 3,
            threads: 1,
            device_model: DeviceModel::Lite,
            verify_signatures: true,
            manifest_mode: ManifestMode::PerDevice,
        };
        let reference = run_rollout_sharded(&base);
        for threads in [2usize, 3, 8] {
            let report = run_rollout_sharded(&ShardedFleetConfig { threads, ..base });
            assert_eq!(reference, report, "{threads} threads");
        }
    }

    #[test]
    fn lite_devices_match_faithful_devices() {
        // Same shards, same RNG streams: only the device implementation
        // differs, and the reports must still agree — the lite model
        // follows the identical token/verify/patch protocol.
        let base = ShardedFleetConfig {
            fleet: FleetConfig {
                devices: 10,
                poll_fraction: 0.5,
                firmware_size: 6_000,
                differential: true,
                seed: 704,
            },
            shards: 2,
            threads: 2,
            device_model: DeviceModel::Faithful,
            verify_signatures: true,
            manifest_mode: ManifestMode::PerDevice,
        };
        let faithful = run_rollout_sharded(&base);
        let lite = run_rollout_sharded(&ShardedFleetConfig {
            device_model: DeviceModel::Lite,
            ..base
        });
        assert_eq!(faithful, lite);
    }

    #[test]
    fn campaign_mode_report_is_byte_identical_to_per_device_mode() {
        // The broadcast manifest is fixed-size like the per-token one, so
        // switching modes changes crypto counts but not a single byte of
        // the report: same rounds, same adoption, same wire bytes.
        let base = ShardedFleetConfig {
            fleet: FleetConfig {
                devices: 40,
                poll_fraction: 0.4,
                firmware_size: 8_000,
                differential: true,
                seed: 707,
            },
            shards: 4,
            threads: 2,
            device_model: DeviceModel::Lite,
            verify_signatures: true,
            manifest_mode: ManifestMode::PerDevice,
        };
        let per_device = run_rollout_sharded(&base);
        let campaign = run_rollout_sharded(&ShardedFleetConfig {
            manifest_mode: ManifestMode::Campaign,
            ..base
        });
        assert_eq!(per_device, campaign);
    }

    #[test]
    fn campaign_mode_verifies_once_per_shard_not_per_device() {
        // 48 devices, 4 shards, one v1→v2 transition: per-device mode
        // runs 2 ECDSA verifications per updated device; campaign mode
        // collapses them to 2 per (shard, distinct manifest) and the
        // memo absorbs the rest. The report must not change at all.
        let base = ShardedFleetConfig {
            fleet: FleetConfig {
                devices: 48,
                poll_fraction: 0.5,
                firmware_size: 6_000,
                differential: true,
                seed: 708,
            },
            shards: 4,
            threads: 2,
            device_model: DeviceModel::Lite,
            verify_signatures: true,
            manifest_mode: ManifestMode::PerDevice,
        };
        let per_device_tracer = Tracer::disabled();
        let per_device = run_rollout_sharded_traced(&base, &per_device_tracer);
        let campaign_tracer = Tracer::disabled();
        let campaign = run_rollout_sharded_traced(
            &ShardedFleetConfig {
                manifest_mode: ManifestMode::Campaign,
                ..base
            },
            &campaign_tracer,
        );
        assert_eq!(per_device, campaign);

        let per_device_counters = per_device_tracer.counters().snapshot();
        let campaign_counters = campaign_tracer.counters().snapshot();
        // Per-device: every one of the 48 updates verified both signatures.
        assert_eq!(per_device_counters.sig_verifications, 2 * 48);
        assert_eq!(per_device_counters.sig_verify_memo_hits, 0);
        // Campaign: one distinct broadcast manifest, verified once per
        // shard — the count scales with shards × manifests, not devices.
        assert_eq!(campaign_counters.sig_verifications, 2 * 4);
        assert_eq!(
            campaign_counters.sig_verify_memo_hits,
            2 * 48 - campaign_counters.sig_verifications
        );
    }

    #[test]
    fn trace_is_identical_across_thread_counts() {
        // Shard buffers are merged in (round, shard-index) order after
        // the parallel join, so the merged record sequence — timestamps,
        // seq numbers, and event payloads — must be byte-identical
        // whatever the thread count, and so must the counter totals.
        let base = ShardedFleetConfig {
            fleet: FleetConfig {
                devices: 24,
                poll_fraction: 0.5,
                firmware_size: 4_000,
                differential: true,
                seed: 706,
            },
            shards: 4,
            threads: 1,
            device_model: DeviceModel::Lite,
            verify_signatures: true,
            manifest_mode: ManifestMode::PerDevice,
        };
        let mut reference: Option<(Vec<upkit_trace::TraceRecord>, _)> = None;
        for threads in [1usize, 2, 8] {
            let sink = Arc::new(MemorySink::new());
            let tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
            let report =
                run_rollout_sharded_traced(&ShardedFleetConfig { threads, ..base }, &tracer);
            assert_eq!(report.rounds.last().unwrap().updated, 24);
            let records = sink.drain();
            assert!(!records.is_empty(), "trace must capture the campaign");
            let counters = tracer.counters().snapshot();
            assert_eq!(counters.link_bytes_to_device, report.total_wire_bytes);
            match &reference {
                None => reference = Some((records, counters)),
                Some((ref_records, ref_counters)) => {
                    assert_eq!(ref_records, &records, "{threads} threads changed the trace");
                    assert_eq!(
                        ref_counters, &counters,
                        "{threads} threads changed the counters"
                    );
                }
            }
        }
    }

    #[test]
    fn lite_non_differential_fleet_converges() {
        let report = run_rollout_sharded(&ShardedFleetConfig {
            fleet: FleetConfig {
                devices: 30,
                poll_fraction: 0.3,
                firmware_size: 4_000,
                differential: false,
                seed: 705,
            },
            shards: 4,
            threads: 2,
            device_model: DeviceModel::Lite,
            verify_signatures: true,
            manifest_mode: ManifestMode::PerDevice,
        });
        assert_eq!(report.rounds.last().unwrap().updated, 30);
        for pair in report.rounds.windows(2) {
            assert!(pair[1].updated >= pair[0].updated, "adoption regressed");
        }
    }

    #[test]
    fn campaign_mode_non_differential_fleet_converges() {
        // Non-differential devices advertise version 0 and receive the
        // broadcast full-image response; once current, the stale re-offer
        // is rejected at the freshness check before any crypto runs.
        let report = run_rollout_sharded(&ShardedFleetConfig {
            fleet: FleetConfig {
                devices: 30,
                poll_fraction: 0.3,
                firmware_size: 4_000,
                differential: false,
                seed: 709,
            },
            shards: 4,
            threads: 2,
            device_model: DeviceModel::Lite,
            verify_signatures: true,
            manifest_mode: ManifestMode::Campaign,
        });
        assert_eq!(report.rounds.last().unwrap().updated, 30);
    }
}
