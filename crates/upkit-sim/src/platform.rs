//! Platform and energy profiles for the three evaluated boards.

use upkit_flash::FlashGeometry;
use upkit_net::LinkProfile;

/// Power draw of the major device components, in milliwatts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Radio active (RX/TX averaged).
    pub radio_mw: f64,
    /// CPU active.
    pub cpu_active_mw: f64,
    /// Flash programming/erasing.
    pub flash_mw: f64,
    /// Sleep floor.
    pub sleep_mw: f64,
}

impl EnergyModel {
    /// Microjoules consumed by `micros` of activity at `mw` milliwatts.
    #[must_use]
    pub fn energy_uj(mw: f64, micros: u64) -> f64 {
        mw * micros as f64 / 1000.0
    }
}

/// A hardware platform profile.
#[derive(Clone, Debug)]
pub struct PlatformProfile {
    /// Board name.
    pub name: &'static str,
    /// CPU clock in Hz (converts cycle counts to time).
    pub cpu_hz: u64,
    /// Internal flash geometry, with timing calibrated so the Fig. 8
    /// loading-phase shapes reproduce (see crate docs).
    pub internal_flash: FlashGeometry,
    /// External SPI NOR flash, when the board carries one (the CC2650
    /// stores its non-bootable slot there).
    pub external_flash: Option<FlashGeometry>,
    /// Time from reset to the bootloader's first instruction plus OS
    /// handoff (excluded: slot verification/moves, modeled separately).
    pub reboot_micros: u64,
    /// Default radio link for the push approach.
    pub push_link: LinkProfile,
    /// Default radio link for the pull approach.
    pub pull_link: LinkProfile,
    /// Power model.
    pub energy: EnergyModel,
}

impl PlatformProfile {
    /// Nordic nRF52840 (Cortex-M4 @ 64 MHz, 1 MB internal flash).
    ///
    /// Flash timing is calibrated so a static-mode slot swap costs
    /// ≈ 0.48 s per 4 kB sector, reproducing Fig. 8a's loading times
    /// (12.7 s / 26.2 s for the push / pull build sizes).
    #[must_use]
    pub fn nrf52840() -> Self {
        Self {
            name: "nRF52840",
            cpu_hz: 64_000_000,
            internal_flash: FlashGeometry {
                size: 1024 * 1024,
                sector_size: 4096,
                read_micros_per_byte: 1,
                write_micros_per_byte: 30,
                erase_micros_per_sector: 85_000,
            },
            external_flash: None,
            reboot_micros: 1_200_000,
            push_link: LinkProfile::ble_gatt(),
            pull_link: LinkProfile::ieee802154_6lowpan(),
            energy: EnergyModel {
                radio_mw: 20.0,
                cpu_active_mw: 10.0,
                flash_mw: 12.0,
                sleep_mw: 0.01,
            },
        }
    }

    /// TI CC2650 (Cortex-M3 @ 48 MHz, 128 kB internal flash + external
    /// SPI NOR for the staging slot, optionally paired with an ATECC508).
    #[must_use]
    pub fn cc2650() -> Self {
        Self {
            name: "CC2650",
            cpu_hz: 48_000_000,
            internal_flash: FlashGeometry {
                size: 128 * 1024,
                sector_size: 4096,
                read_micros_per_byte: 1,
                write_micros_per_byte: 18,
                erase_micros_per_sector: 160_000,
            },
            external_flash: Some(FlashGeometry {
                size: 1024 * 1024,
                sector_size: 4096,
                read_micros_per_byte: 4,
                write_micros_per_byte: 25,
                erase_micros_per_sector: 200_000,
            }),
            reboot_micros: 1_000_000,
            push_link: LinkProfile::ble_gatt(),
            pull_link: LinkProfile::ieee802154_6lowpan(),
            energy: EnergyModel {
                radio_mw: 18.0,
                cpu_active_mw: 8.0,
                flash_mw: 10.0,
                sleep_mw: 0.005,
            },
        }
    }

    /// TI CC2538 (Cortex-M3 @ 32 MHz, 512 kB internal flash).
    #[must_use]
    pub fn cc2538() -> Self {
        Self {
            name: "CC2538",
            cpu_hz: 32_000_000,
            internal_flash: FlashGeometry {
                size: 512 * 1024,
                sector_size: 2048,
                read_micros_per_byte: 1,
                write_micros_per_byte: 20,
                erase_micros_per_sector: 90_000,
            },
            external_flash: None,
            reboot_micros: 1_100_000,
            push_link: LinkProfile::ble_gatt(),
            pull_link: LinkProfile::ieee802154_6lowpan(),
            energy: EnergyModel {
                radio_mw: 24.0,
                cpu_active_mw: 7.0,
                flash_mw: 11.0,
                sleep_mw: 0.01,
            },
        }
    }

    /// All platform profiles evaluated by the paper.
    #[must_use]
    pub fn all() -> Vec<Self> {
        vec![Self::nrf52840(), Self::cc2650(), Self::cc2538()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_well_formed() {
        for p in PlatformProfile::all() {
            assert!(p.cpu_hz > 0);
            assert!(p.internal_flash.size % p.internal_flash.sector_size == 0);
            if let Some(ext) = p.external_flash {
                assert!(ext.size % ext.sector_size == 0);
            }
            assert!(p.reboot_micros > 0);
        }
    }

    #[test]
    fn only_cc2650_has_external_flash() {
        assert!(PlatformProfile::nrf52840().external_flash.is_none());
        assert!(PlatformProfile::cc2650().external_flash.is_some());
        assert!(PlatformProfile::cc2538().external_flash.is_none());
    }

    #[test]
    fn swap_cost_calibration_for_fig8a() {
        // One 4 kB sector swap on the nRF52840: 2 erases + 2 writes +
        // 2 reads ≈ 0.48 s, the constant behind Fig. 8a's loading bars.
        let g = PlatformProfile::nrf52840().internal_flash;
        let per_sector = 2 * g.erase_micros_per_sector
            + 2 * 4096 * g.write_micros_per_byte
            + 2 * 4096 * g.read_micros_per_byte;
        let secs = per_sector as f64 / 1e6;
        assert!((0.35..0.50).contains(&secs), "{secs:.3} s per sector");
    }

    #[test]
    fn energy_unit_conversion() {
        // 1 W for 1 s = 1 J = 1e6 µJ.
        assert!((EnergyModel::energy_uj(1000.0, 1_000_000) - 1e6).abs() < 1e-9);
    }
}
