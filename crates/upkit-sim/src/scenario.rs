//! End-to-end update scenarios with phase-by-phase time and energy
//! accounting — the machinery behind the Fig. 8 experiments.
//!
//! A scenario assembles a complete world: vendor + update server, a device
//! (flash layout, update agent, bootloader, crypto backend) on a
//! [`PlatformProfile`], and a transport. Running it executes the real code
//! path — genuine signatures, genuine LZSS/bsdiff, genuine flash
//! semantics — and charges every byte and cycle to the paper's three
//! phases:
//!
//! * **Propagation** — radio time (from the transport accounting) plus the
//!   flash time of storing the stream through the pipeline.
//! * **Verification** — CPU time of the digest and signature checks in the
//!   agent *and* the bootloader (both verifications, per UpKit's design).
//! * **Loading** — reboot plus whatever the bootloader's loading strategy
//!   moves (nothing for A/B; a slot swap/copy for static mode).

use std::sync::Arc;

use upkit_core::agent::{AgentConfig, UpdateAgent, UpdatePlan};
use upkit_core::bootloader::{BootConfig, BootMode, BootOutcome, Bootloader};
use upkit_core::generation::{UpdateServer, VendorServer};
use upkit_core::image::{write_manifest, FIRMWARE_OFFSET};
use upkit_core::keys::TrustAnchors;
use upkit_crypto::backend::{SecurityBackend, TinyCryptBackend, TinyDtlsBackend};
use upkit_crypto::ecdsa::SigningKey;
use upkit_crypto::hsm::SimulatedHsm;
use upkit_crypto::sha256::sha256;
use upkit_flash::{
    configuration_a, configuration_b, standard, FlashDevice, MemoryLayout, SimFlash,
};
use upkit_manifest::{Manifest, SignedManifest, Version};
use upkit_net::{
    BorderRouter, LossyLink, PullEndpoints, PullSession, PushEndpoints, PushSession, RetryPolicy,
    SessionEndpoints, SessionOutcome, SessionReport, Smartphone, Step, Tamper, TransferAccounting,
    Transport,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::firmware::FirmwareGenerator;
use crate::platform::{EnergyModel, PlatformProfile};

/// Constant device identity used by scenarios.
pub const DEVICE_ID: u32 = 0x1A2B_3C4D;
/// Constant application identifier.
pub const APP_ID: u32 = 0x5E6F_0001;
/// Link offset all synthetic firmware is "built" for.
pub const LINK_OFFSET: u32 = 0x0800_0000;

/// Distribution approach.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Approach {
    /// BLE push through a smartphone.
    Push,
    /// CoAP pull through a border router.
    Pull,
}

/// Slot configuration (Fig. 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotMode {
    /// Configuration A: two bootable slots, boot in place.
    AB,
    /// Configuration B: bootable + staging, moved at boot.
    Static {
        /// Swap (keep a rollback image) or copy.
        swap: bool,
    },
}

/// Crypto backend selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CryptoChoice {
    /// Software ECC, tinycrypt profile.
    TinyCrypt,
    /// Software ECC, TinyDTLS profile.
    TinyDtls,
    /// ATECC508 hardware verification.
    Hsm,
}

/// What kind of update the server should end up serving.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateKind {
    /// Full image (the device advertises no differential support).
    Full,
    /// Differential, OS-version-change similarity.
    DiffOsChange,
    /// Differential, small application change of about this many bytes.
    DiffAppChange {
        /// Approximate changed-byte count (the paper uses 1000).
        bytes: usize,
    },
}

/// A scenario specification.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Hardware platform.
    pub platform: PlatformProfile,
    /// Distribution approach.
    pub approach: Approach,
    /// Slot configuration.
    pub slot_mode: SlotMode,
    /// Crypto backend.
    pub crypto: CryptoChoice,
    /// New-firmware size in bytes (the paper's Fig. 8 uses 100 kB).
    pub firmware_size: usize,
    /// Full vs differential update.
    pub update_kind: UpdateKind,
    /// Optional in-transit tampering by the proxy.
    pub tamper: Option<Tamper>,
    /// Deterministic seed (keys, nonces, firmware content).
    pub seed: u64,
}

impl ScenarioConfig {
    /// The paper's Fig. 8a baseline: 100 kB full image on the nRF52840.
    #[must_use]
    pub fn fig8a(approach: Approach) -> Self {
        Self {
            platform: PlatformProfile::nrf52840(),
            approach,
            slot_mode: SlotMode::Static { swap: true },
            crypto: CryptoChoice::TinyCrypt,
            firmware_size: 100_000,
            update_kind: UpdateKind::Full,
            tamper: None,
            seed: 0x8A,
        }
    }
}

/// Per-phase times in microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Propagation phase.
    pub propagation_micros: u64,
    /// Verification phase (agent + bootloader).
    pub verification_micros: u64,
    /// Loading phase (reboot + slot moves).
    pub loading_micros: u64,
}

impl PhaseBreakdown {
    /// Sum of all phases.
    #[must_use]
    pub fn total_micros(&self) -> u64 {
        self.propagation_micros + self.verification_micros + self.loading_micros
    }
}

/// Result of one scenario run.
#[derive(Debug)]
pub struct ScenarioResult {
    /// How the propagation session ended.
    pub outcome: SessionOutcome,
    /// Boot outcome, when the device got as far as rebooting.
    pub boot: Option<BootOutcome>,
    /// Phase times.
    pub phases: PhaseBreakdown,
    /// Radio accounting.
    pub accounting: TransferAccounting,
    /// Total device energy in microjoules.
    pub energy_uj: f64,
    /// Bytes that crossed the radio toward the device.
    pub payload_bytes: u64,
    /// Version running after the scenario.
    pub running_version: Option<Version>,
}

fn round_up(value: u32, to: u32) -> u32 {
    value.div_ceil(to) * to
}

/// Sums flash time across every device in the layout.
fn flash_micros(layout: &mut MemoryLayout) -> u64 {
    let mut total = 0u64;
    let mut i = 0;
    while let Some(geometry) = layout.device_geometry(i) {
        let stats = layout.device_mut(i).expect("device exists").stats();
        total += stats.bytes_written * geometry.write_micros_per_byte
            + stats.sectors_erased * geometry.erase_micros_per_sector;
        i += 1;
    }
    // Reads are tracked at the layout level; charge them at the internal
    // flash rate.
    let read_rate = layout
        .device_geometry(0)
        .map_or(0, |g| g.read_micros_per_byte);
    total + layout.total_stats().bytes_read * read_rate
}

/// Steps `session` until it finishes, or abandons it at the
/// `cut_after_events`-th event boundary (simulating the device dying
/// mid-session at an arbitrary link event, not merely a flash-byte
/// offset).
fn step_with_cut(
    session: &mut dyn Transport,
    endpoints: &mut dyn SessionEndpoints,
    cut_after_events: Option<u64>,
) -> SessionReport {
    let mut events = 0u64;
    loop {
        if let Some(cut) = cut_after_events {
            if events >= cut {
                return SessionReport {
                    outcome: SessionOutcome::Incomplete,
                    accounting: *session.accounting(),
                };
            }
        }
        match session.step(endpoints) {
            Step::Progress(_) => events += 1,
            Step::Done(report) => return report,
        }
    }
}

/// Runs one complete update scenario.
///
/// # Panics
///
/// Panics if the configuration is internally impossible (firmware larger
/// than any slot arrangement on the platform).
#[must_use]
pub fn run_scenario(cfg: &ScenarioConfig) -> ScenarioResult {
    run_scenario_with_cut(cfg, None)
}

/// [`run_scenario`], optionally abandoning the propagation session after
/// `cut_after_events` link events — the session-layer generalisation of
/// flash-byte power cuts. With `None` this is exactly [`run_scenario`].
///
/// # Panics
///
/// Panics if the configuration is internally impossible (firmware larger
/// than any slot arrangement on the platform).
#[must_use]
pub fn run_scenario_with_cut(
    cfg: &ScenarioConfig,
    cut_after_events: Option<u64>,
) -> ScenarioResult {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // --- Servers and keys -------------------------------------------------
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));

    // --- Crypto backend and trust anchors ---------------------------------
    let (backend, anchors): (Arc<dyn SecurityBackend>, TrustAnchors) = match cfg.crypto {
        CryptoChoice::TinyCrypt => (
            Arc::new(TinyCryptBackend),
            TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key()),
        ),
        CryptoChoice::TinyDtls => (
            Arc::new(TinyDtlsBackend),
            TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key()),
        ),
        CryptoChoice::Hsm => {
            let hsm = SimulatedHsm::new();
            hsm.provision(0, vendor.verifying_key()).expect("unlocked");
            hsm.provision(1, server.verifying_key()).expect("unlocked");
            hsm.lock_data_zone();
            (Arc::new(hsm), TrustAnchors::hsm(0, 1))
        }
    };

    // --- Firmware versions -------------------------------------------------
    let generator = FirmwareGenerator::new(cfg.seed ^ 0xF1F2);
    let v1 = generator.base(cfg.firmware_size);
    let v2 = match cfg.update_kind {
        UpdateKind::Full | UpdateKind::DiffOsChange => generator.os_version_change(&v1),
        UpdateKind::DiffAppChange { bytes } => generator.app_change(&v1, bytes),
    };

    // --- Flash layout -------------------------------------------------------
    let sector = cfg.platform.internal_flash.sector_size;
    let needed = (v1.len().max(v2.len()) as u32 + FIRMWARE_OFFSET).max(
        // Slots hold the full build in practice; size them to the bigger
        // of the transferred image and the platform's own build.
        build_flash_size(cfg),
    );
    let slot_size = round_up(needed, sector);
    let internal = Box::new(SimFlash::new(cfg.platform.internal_flash));
    let mut layout = match cfg.slot_mode {
        SlotMode::AB => configuration_a(internal, slot_size).expect("valid layout"),
        SlotMode::Static { .. } => {
            let external = cfg
                .platform
                .external_flash
                .map(|g| Box::new(SimFlash::new(g)) as Box<dyn FlashDevice>);
            configuration_b(internal, external, slot_size).expect("valid layout")
        }
    };

    // --- Install v1 --------------------------------------------------------
    install_current(&mut layout, &vendor, &server, &v1);

    // --- Publish releases ---------------------------------------------------
    server.publish(vendor.release(v1.clone(), Version(1), LINK_OFFSET, APP_ID));
    server.publish(vendor.release(v2.clone(), Version(2), LINK_OFFSET, APP_ID));

    // --- Agent --------------------------------------------------------------
    let supports_differential = cfg.update_kind != UpdateKind::Full;
    let mut agent = UpdateAgent::new(
        backend.clone(),
        anchors,
        AgentConfig {
            device_id: DEVICE_ID,
            app_id: APP_ID,
            supports_differential,
            content_key: None,
        },
    );
    let plan = UpdatePlan {
        target_slot: standard::SLOT_B,
        current_slot: standard::SLOT_A,
        installed_version: Version(1),
        installed_size: v1.len() as u32,
        allowed_link_offsets: vec![LINK_OFFSET],
        max_firmware_size: slot_size - FIRMWARE_OFFSET,
    };
    let nonce = (cfg.seed as u32).wrapping_mul(2_654_435_761) | 1;

    // --- Propagation --------------------------------------------------------
    // Built directly on the stepped session machinery: the scenario owns
    // the event loop, so a cut can land on any link-event boundary.
    layout.reset_stats();
    let report = match cfg.approach {
        Approach::Push => {
            let link = cfg.platform.push_link;
            let mut phone = match &cfg.tamper {
                Some(t) => Smartphone::compromised(t.clone()),
                None => Smartphone::new(),
            };
            let mut session =
                PushSession::new(LossyLink::reliable(link), RetryPolicy::for_link(&link), 0);
            let mut endpoints =
                PushEndpoints::new(&server, &mut phone, &mut agent, &mut layout, plan, nonce);
            step_with_cut(&mut session, &mut endpoints, cut_after_events)
        }
        Approach::Pull => {
            let link = cfg.platform.pull_link;
            let router = match &cfg.tamper {
                Some(t) => BorderRouter::compromised(t.clone()),
                None => BorderRouter::new(),
            };
            let mut session =
                PullSession::new(LossyLink::reliable(link), RetryPolicy::for_link(&link), 0);
            let mut endpoints =
                PullEndpoints::new(&server, &router, &mut agent, &mut layout, plan, nonce);
            step_with_cut(&mut session, &mut endpoints, cut_after_events)
        }
    };
    let propagation_flash = flash_micros(&mut layout);
    let propagation_micros = report.accounting.elapsed_micros + propagation_flash;

    // --- Verification (agent side, analytic CPU time) -----------------------
    let profile = backend.profile();
    let manifest_bytes = upkit_manifest::SIGNED_MANIFEST_LEN as u64;
    let verify_once_micros = if profile.hardware_offload {
        profile.hw_verify_micros
    } else {
        profile.verify_cycles * 1_000_000 / cfg.platform.cpu_hz
    };
    let digest_micros = |bytes: u64| -> u64 {
        bytes * profile.digest_cycles_per_byte * 1_000_000 / cfg.platform.cpu_hz
    };
    let mut verification_micros = 0u64;
    // Manifest digest + two signature checks happen whenever the manifest
    // completed (accepted or reached firmware phases).
    let manifest_verified = !matches!(report.outcome, SessionOutcome::NoUpdateAvailable);
    if manifest_verified {
        verification_micros += digest_micros(manifest_bytes) + 2 * verify_once_micros;
    }
    // Firmware digest only when the whole payload arrived.
    let firmware_verified = matches!(report.outcome, SessionOutcome::Complete)
        || matches!(report.outcome, SessionOutcome::RejectedAtFirmware(_));
    if firmware_verified {
        verification_micros += digest_micros(v2.len() as u64);
    }

    // --- Reboot + bootloader -------------------------------------------------
    let mut loading_micros = 0u64;
    let mut boot_outcome = None;
    let mut running_version = Some(Version(1));
    if report.outcome.is_complete() {
        layout.reset_stats();
        let boot_mode = match cfg.slot_mode {
            SlotMode::AB => BootMode::AB {
                slots: vec![standard::SLOT_A, standard::SLOT_B],
            },
            SlotMode::Static { swap } => BootMode::Static {
                bootable: standard::SLOT_A,
                staging: standard::SLOT_B,
                swap,
            },
        };
        let bootloader = Bootloader::new(
            backend.clone(),
            anchors,
            BootConfig {
                device_id: DEVICE_ID,
                app_id: APP_ID,
                allowed_link_offsets: vec![LINK_OFFSET],
                max_firmware_size: slot_size - FIRMWARE_OFFSET,
                mode: boot_mode,
                recovery_slot: None,
            },
        );
        match bootloader.boot(&mut layout) {
            Ok(outcome) => {
                // Bootloader verification: both slots are checked — digest
                // over each stored firmware plus two signature checks each.
                verification_micros += digest_micros(v1.len() as u64)
                    + digest_micros(v2.len() as u64)
                    + 4 * verify_once_micros;
                running_version = Some(outcome.version);
                boot_outcome = Some(outcome);
            }
            Err(_) => {
                running_version = None;
            }
        }
        loading_micros = cfg.platform.reboot_micros + flash_micros(&mut layout);
    }

    // --- Energy ---------------------------------------------------------------
    let energy = &cfg.platform.energy;
    let energy_uj = EnergyModel::energy_uj(energy.radio_mw, report.accounting.elapsed_micros)
        + EnergyModel::energy_uj(energy.cpu_active_mw, verification_micros)
        + EnergyModel::energy_uj(energy.flash_mw, propagation_flash + loading_micros);

    ScenarioResult {
        payload_bytes: report.accounting.bytes_to_device,
        accounting: report.accounting,
        phases: PhaseBreakdown {
            propagation_micros,
            verification_micros,
            loading_micros,
        },
        energy_uj,
        outcome: report.outcome,
        boot: boot_outcome,
        running_version,
    }
}

/// Flash size of the device's own build, from the footprint model (the
/// slot must hold the whole installed image, whose size Table II reports).
fn build_flash_size(cfg: &ScenarioConfig) -> u32 {
    use upkit_footprint::{upkit_agent, AgentOptions, Approach as FpApproach, Os};
    let approach = match cfg.approach {
        Approach::Push => FpApproach::Push,
        Approach::Pull => FpApproach::Pull,
    };
    // The Fig. 8 experiments run Zephyr on the nRF52840; other platforms
    // fall back to the Contiki build size.
    let os = if cfg.platform.name == "nRF52840" {
        Os::Zephyr
    } else {
        Os::Contiki
    };
    upkit_agent(os, approach, AgentOptions::default())
        .or_else(|| upkit_agent(Os::Zephyr, approach, AgentOptions::default()))
        .map_or(100_000, |f| f.flash)
}

/// Installs `firmware` as the running version 1 image in slot A, with a
/// correctly double-signed manifest so the bootloader accepts it.
fn install_current(
    layout: &mut MemoryLayout,
    vendor: &VendorServer,
    server: &UpdateServer,
    firmware: &[u8],
) {
    let manifest = Manifest {
        device_id: DEVICE_ID,
        nonce: 0,
        old_version: Version(0),
        version: Version(1),
        size: firmware.len() as u32,
        payload_size: firmware.len() as u32,
        digest: sha256(firmware),
        link_offset: LINK_OFFSET,
        app_id: APP_ID,
    };
    let signed = SignedManifest {
        manifest,
        vendor_signature: vendor.sign_manifest_core(&manifest),
        server_signature: server.sign_manifest(&manifest),
    };
    layout.erase_slot(standard::SLOT_A).expect("fresh flash");
    write_manifest(layout, standard::SLOT_A, &signed).expect("fresh flash");
    layout
        .write_slot(standard::SLOT_A, FIRMWARE_OFFSET, firmware)
        .expect("slot sized for firmware");
}
