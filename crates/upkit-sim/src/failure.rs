//! Failure injection: power loss at arbitrary points of an update.
//!
//! The paper's verification design is motivated by exactly these cases:
//! "the IoT device may reboot in the middle of the propagation phase,
//! which would leave the new update image stored on the device
//! incomplete. Similarly, the device may lose power before the update
//! agent can verify the firmware." The bootloader's re-verification must
//! keep the device bootable regardless of where the cut lands — the
//! property these scenarios exercise.
//!
//! Two cut models are provided: [`run_power_loss_scenario`] cuts after a
//! flash-byte budget (the device dies mid-write), and
//! [`run_power_loss_at_event`] cuts on a session *event* boundary (the
//! device dies between link events — a lost connection, a crashed proxy),
//! which the stepped-session refactor makes expressible.

use std::sync::Arc;

use upkit_core::agent::{AgentConfig, UpdateAgent, UpdatePlan};
use upkit_core::bootloader::{BootConfig, BootMode, Bootloader};
use upkit_core::image::FIRMWARE_OFFSET;
use upkit_core::keys::TrustAnchors;
use upkit_crypto::backend::TinyCryptBackend;
use upkit_crypto::ecdsa::SigningKey;
use upkit_flash::{configuration_a, standard, MemoryLayout, SimFlash};
use upkit_manifest::Version;
use upkit_net::{
    run_push_session, LinkProfile, LossyLink, PushEndpoints, PushSession, RetryPolicy,
    SessionOutcome, Smartphone, Step, Transport,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::firmware::FirmwareGenerator;
use crate::scenario::{APP_ID, DEVICE_ID, LINK_OFFSET};

/// Outcome of a power-loss scenario.
#[derive(Debug)]
pub struct PowerLossReport {
    /// Whether the propagation session was interrupted by the cut.
    pub session_interrupted: bool,
    /// Version running after the post-cut reboot (`None` = bricked, which
    /// must never happen).
    pub booted_version: Option<Version>,
    /// Flash bytes written before the cut.
    pub bytes_written_before_cut: u64,
}

const SLOT_SIZE: u32 = 4096 * 16;

/// A complete push-update world: servers, a provisioned A/B device at v1,
/// and v2 published — everything short of running the session.
struct PowerLossWorld {
    server: upkit_core::generation::UpdateServer,
    backend: Arc<TinyCryptBackend>,
    anchors: TrustAnchors,
    layout: MemoryLayout,
    agent: UpdateAgent,
    plan: UpdatePlan,
}

fn power_loss_world(seed: u64) -> PowerLossWorld {
    let mut rng = StdRng::seed_from_u64(seed);
    let vendor = upkit_core::generation::VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = upkit_core::generation::UpdateServer::new(SigningKey::generate(&mut rng));
    let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());
    let backend = Arc::new(TinyCryptBackend);

    let generator = FirmwareGenerator::new(seed);
    let v1 = generator.base(40_000);
    let v2 = generator.os_version_change(&v1);

    let mut layout = configuration_a(
        Box::new(SimFlash::new(upkit_flash::FlashGeometry {
            size: 1024 * 1024,
            sector_size: 4096,
            read_micros_per_byte: 0,
            write_micros_per_byte: 0,
            erase_micros_per_sector: 0,
        })),
        SLOT_SIZE,
    )
    .expect("valid layout");

    // Install v1 (signed) in slot A.
    install_v1(&mut layout, &vendor, &server, &v1);
    server.publish(vendor.release(v1.clone(), Version(1), LINK_OFFSET, APP_ID));
    server.publish(vendor.release(v2, Version(2), LINK_OFFSET, APP_ID));

    let agent = UpdateAgent::new(
        backend.clone(),
        anchors,
        AgentConfig {
            device_id: DEVICE_ID,
            app_id: APP_ID,
            supports_differential: false,
            content_key: None,
        },
    );
    let plan = UpdatePlan {
        target_slot: standard::SLOT_B,
        current_slot: standard::SLOT_A,
        installed_version: Version(1),
        installed_size: v1.len() as u32,
        allowed_link_offsets: vec![LINK_OFFSET],
        max_firmware_size: SLOT_SIZE - FIRMWARE_OFFSET,
    };

    // Measure only update-time flash traffic, not provisioning.
    layout.reset_stats();

    PowerLossWorld {
        server,
        backend,
        anchors,
        layout,
        agent,
        plan,
    }
}

/// Power restored: reboot and see what the bootloader salvages.
fn reboot(world: &mut PowerLossWorld) -> Option<Version> {
    world
        .layout
        .device_mut(0)
        .expect("internal flash")
        .disarm_power_cut();
    let bootloader = Bootloader::new(
        world.backend.clone(),
        world.anchors,
        BootConfig {
            device_id: DEVICE_ID,
            app_id: APP_ID,
            allowed_link_offsets: vec![LINK_OFFSET],
            max_firmware_size: SLOT_SIZE - FIRMWARE_OFFSET,
            mode: BootMode::AB {
                slots: vec![standard::SLOT_A, standard::SLOT_B],
            },
            recovery_slot: None,
        },
    );
    bootloader.boot(&mut world.layout).ok().map(|o| o.version)
}

/// Runs a push update on an A/B device, cutting power after
/// `cut_after_flash_bytes` bytes of flash programming, then reboots and
/// reports what the bootloader managed to boot.
#[must_use]
pub fn run_power_loss_scenario(cut_after_flash_bytes: u64, seed: u64) -> PowerLossReport {
    let mut world = power_loss_world(seed);

    // Arm the cut *before* the session: erases and writes both consume the
    // budget, so the cut can land in StartUpdate, the header write, or the
    // pipeline.
    world
        .layout
        .device_mut(0)
        .expect("internal flash")
        .arm_power_cut_after(cut_after_flash_bytes);

    let mut phone = Smartphone::new();
    let report = run_push_session(
        &world.server,
        &mut phone,
        &mut world.agent,
        &mut world.layout,
        world.plan.clone(),
        seed as u32 | 1,
        &LinkProfile::ble_gatt(),
    );
    let session_interrupted = !matches!(report.outcome, SessionOutcome::Complete);
    let bytes_written_before_cut = world.layout.total_stats().bytes_written;

    let booted_version = reboot(&mut world);

    PowerLossReport {
        session_interrupted,
        booted_version,
        bytes_written_before_cut,
    }
}

/// Runs a push update on an A/B device, abandoning the stepped session
/// after `cut_after_events` link events (the device loses power *between*
/// events rather than mid-flash-write), then reboots and reports what the
/// bootloader managed to boot.
///
/// Only the session layer makes this cut model expressible: the legacy
/// drivers ran the whole Fig. 2 sequence inside one call, so a failure
/// could only ever be injected below them, in the flash.
#[must_use]
pub fn run_power_loss_at_event(cut_after_events: u64, seed: u64) -> PowerLossReport {
    let mut world = power_loss_world(seed);

    let link = LinkProfile::ble_gatt();
    let mut phone = Smartphone::new();
    let mut session = PushSession::new(LossyLink::reliable(link), RetryPolicy::for_link(&link), 0);
    let mut endpoints = PushEndpoints::new(
        &world.server,
        &mut phone,
        &mut world.agent,
        &mut world.layout,
        world.plan.clone(),
        seed as u32 | 1,
    );
    let mut events = 0u64;
    let session_interrupted = loop {
        if events >= cut_after_events {
            // Power dies here; the session is simply abandoned.
            break true;
        }
        match session.step(&mut endpoints) {
            Step::Progress(_) => events += 1,
            Step::Done(report) => break !matches!(report.outcome, SessionOutcome::Complete),
        }
    };
    let bytes_written_before_cut = world.layout.total_stats().bytes_written;

    let booted_version = reboot(&mut world);

    PowerLossReport {
        session_interrupted,
        booted_version,
        bytes_written_before_cut,
    }
}

fn install_v1(
    layout: &mut MemoryLayout,
    vendor: &upkit_core::generation::VendorServer,
    server: &upkit_core::generation::UpdateServer,
    firmware: &[u8],
) {
    use upkit_crypto::sha256::sha256;
    use upkit_manifest::{Manifest, SignedManifest};
    let manifest = Manifest {
        device_id: DEVICE_ID,
        nonce: 0,
        old_version: Version(0),
        version: Version(1),
        size: firmware.len() as u32,
        payload_size: firmware.len() as u32,
        digest: sha256(firmware),
        link_offset: LINK_OFFSET,
        app_id: APP_ID,
    };
    let signed = SignedManifest {
        manifest,
        vendor_signature: vendor.sign_manifest_core(&manifest),
        server_signature: server.sign_manifest(&manifest),
    };
    layout.erase_slot(standard::SLOT_A).expect("fresh flash");
    upkit_core::image::write_manifest(layout, standard::SLOT_A, &signed).expect("fresh flash");
    layout
        .write_slot(standard::SLOT_A, FIRMWARE_OFFSET, firmware)
        .expect("slot fits");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_during_slot_erase_keeps_device_bootable() {
        // StartUpdate erases slot B; the budget dies inside the erase.
        let report = run_power_loss_scenario(1_000, 200);
        assert!(report.session_interrupted);
        assert_eq!(report.booted_version, Some(Version(1)));
    }

    #[test]
    fn cut_during_firmware_write_keeps_device_bootable() {
        // Slot B erase = 16 sectors * 4096 = 65536 budget; manifest header
        // write + some firmware, then cut.
        let report = run_power_loss_scenario(66_000 + 5_000, 201);
        assert!(report.session_interrupted);
        assert_eq!(report.booted_version, Some(Version(1)));
    }

    #[test]
    fn generous_budget_lets_update_complete() {
        let report = run_power_loss_scenario(100_000_000, 202);
        assert!(!report.session_interrupted);
        assert_eq!(report.booted_version, Some(Version(2)));
    }

    #[test]
    fn sweep_of_cut_points_never_bricks() {
        // Property-style sweep across the whole write timeline: whatever
        // the cut point, the device boots v1 or v2 — never nothing.
        for cut in [
            0u64, 1, 100, 4_000, 50_000, 66_000, 80_000, 100_000, 105_000,
        ] {
            let report = run_power_loss_scenario(cut, 300 + cut);
            assert!(
                matches!(report.booted_version, Some(Version(1)) | Some(Version(2))),
                "cut at {cut}: {:?}",
                report.booted_version
            );
        }
    }

    #[test]
    fn event_cut_before_any_transfer_boots_v1() {
        // Cut before even the token exchange: slot B untouched.
        let report = run_power_loss_at_event(0, 210);
        assert!(report.session_interrupted);
        assert_eq!(report.booted_version, Some(Version(1)));
        assert_eq!(report.bytes_written_before_cut, 0);
    }

    #[test]
    fn event_cut_sweep_never_bricks() {
        // Cuts across the whole event timeline — during the token
        // exchange, mid-manifest, mid-payload, and far beyond the end
        // (where the session completes first): always v1 or v2.
        for cut in [0u64, 1, 2, 3, 5, 50, 120, 170, 100_000] {
            let report = run_power_loss_at_event(cut, 400 + cut);
            assert!(
                matches!(report.booted_version, Some(Version(1)) | Some(Version(2))),
                "event cut at {cut}: {:?}",
                report.booted_version
            );
        }
    }

    #[test]
    fn event_cut_beyond_session_end_completes_normally() {
        let report = run_power_loss_at_event(u64::MAX, 211);
        assert!(!report.session_interrupted);
        assert_eq!(report.booted_version, Some(Version(2)));
    }

    #[test]
    fn power_cut_counters_match_recovery_expectations() {
        use upkit_trace::{Event, MemorySink, Tracer};

        // One tracer across the cut, the recovery boot, and the retried
        // update: the counter ledger must tell the same story the
        // scenario's return values do.
        let mut world = power_loss_world(212);
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
        world.layout.set_tracer(tracer.clone());

        // Phase 1 — the cut lands inside slot B's very first sector erase
        // (1000-byte budget < one 4096-byte sector): no sector completed,
        // so no erase and no firmware byte may be charged.
        world
            .layout
            .device_mut(0)
            .expect("internal flash")
            .arm_power_cut_after(1_000);
        let mut phone = Smartphone::new();
        let report = run_push_session(
            &world.server,
            &mut phone,
            &mut world.agent,
            &mut world.layout,
            world.plan.clone(),
            213,
            &LinkProfile::ble_gatt(),
        );
        assert!(!matches!(report.outcome, SessionOutcome::Complete));
        let at_cut = tracer.counters().snapshot();
        assert_eq!(
            at_cut.total_erases(),
            0,
            "no sector completed before the cut"
        );
        assert_eq!(at_cut.total_flash_writes(), 0);
        assert_eq!(at_cut.boots, 0);

        // Phase 2 — power restored: the bootloader re-verifies slot A
        // (both manifest signatures) and boots v1. The ledger gains one
        // boot, two signature checks, and a Boot event for slot A.
        assert_eq!(reboot(&mut world), Some(Version(1)));
        let after_boot = tracer.counters().snapshot();
        assert_eq!(after_boot.boots, 1);
        assert_eq!(
            after_boot.sig_verifications,
            at_cut.sig_verifications + 2,
            "recovery verifies exactly the booted slot's two signatures"
        );
        assert!(sink.snapshot().iter().any(|r| matches!(
            r.event,
            Event::Boot { slot, version } if slot == standard::SLOT_A.0 && version == 1
        )));

        // Phase 3 — the rollout retries with a fresh agent over the same
        // (reliable) link: the retried StartUpdate re-erases all of slot B,
        // writes the firmware, and needs no link-level retries.
        let mut retry_agent = UpdateAgent::new(
            world.backend.clone(),
            world.anchors,
            AgentConfig {
                device_id: DEVICE_ID,
                app_id: APP_ID,
                supports_differential: false,
                content_key: None,
            },
        );
        let report = run_push_session(
            &world.server,
            &mut phone,
            &mut retry_agent,
            &mut world.layout,
            world.plan.clone(),
            214,
            &LinkProfile::ble_gatt(),
        );
        assert!(matches!(report.outcome, SessionOutcome::Complete));
        let after_retry = tracer.counters().snapshot();
        let slot_b_sectors = u64::from(SLOT_SIZE / 4096);
        assert_eq!(
            after_retry.total_erases() - after_boot.total_erases(),
            slot_b_sectors,
            "the retry re-erases the whole target slot"
        );
        assert!(after_retry.total_flash_writes() > after_boot.total_flash_writes());
        assert_eq!(after_retry.retries, 0, "reliable link: no retransmissions");

        // The retried update boots v2.
        assert_eq!(reboot(&mut world), Some(Version(2)));
        assert_eq!(tracer.counters().snapshot().boots, 2);
    }
}
