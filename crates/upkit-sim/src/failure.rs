//! Failure injection: power loss at arbitrary points of an update.
//!
//! The paper's verification design is motivated by exactly these cases:
//! "the IoT device may reboot in the middle of the propagation phase,
//! which would leave the new update image stored on the device
//! incomplete. Similarly, the device may lose power before the update
//! agent can verify the firmware." The bootloader's re-verification must
//! keep the device bootable regardless of where the cut lands — the
//! property these scenarios exercise.
//!
//! Two cut models are provided: [`run_power_loss_scenario`] cuts after a
//! flash-byte budget (the device dies mid-write), and
//! [`run_power_loss_at_event`] cuts on a session *event* boundary (the
//! device dies between link events — a lost connection, a crashed proxy),
//! which the stepped-session refactor makes expressible.
//!
//! The scenario world itself is public: [`update_world`] builds a fully
//! provisioned v1 device (A/B or static-swap, optionally with a recovery
//! slot) over *any* flash device, which is how the `upkit-chaos`
//! explorer replays one update scenario once per recorded flash-op
//! boundary with a fault proxy underneath.

use std::sync::Arc;

use upkit_core::agent::{AgentConfig, UpdateAgent, UpdatePlan};
use upkit_core::bootloader::{BootConfig, BootMode, Bootloader, FixedPointError, FixedPointReport};
use upkit_core::components::{ComponentImage, ComponentSlots};
use upkit_core::image::FIRMWARE_OFFSET;
use upkit_core::keys::TrustAnchors;
use upkit_crypto::backend::TinyCryptBackend;
use upkit_crypto::ecdsa::SigningKey;
use upkit_crypto::sha256::sha256;
use upkit_flash::{
    configuration_a, configuration_multi, standard, FlashDevice, FlashGeometry, MemoryLayout,
    SimFlash, SlotId, SlotKind, SlotSpec,
};
use upkit_manifest::{
    ComponentEntry, ComponentTable, Manifest, MultiManifest, SignedManifest, SignedMultiManifest,
    Version,
};
use upkit_net::{
    run_push_session, LinkProfile, LossyLink, PushEndpoints, PushSession, RetryPolicy,
    SessionOutcome, Smartphone, Step, Transport,
};

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::firmware::FirmwareGenerator;
use crate::scenario::{APP_ID, DEVICE_ID, LINK_OFFSET};

/// Outcome of a power-loss scenario.
#[derive(Debug)]
pub struct PowerLossReport {
    /// Whether the propagation session was interrupted by the cut.
    pub session_interrupted: bool,
    /// Version running after the post-cut reboot (`None` = bricked, which
    /// must never happen).
    pub booted_version: Option<Version>,
    /// Flash bytes written before the cut.
    pub bytes_written_before_cut: u64,
    /// Boot attempts the recovery loop needed to reach a stable image
    /// (0 when the device bricked).
    pub boots_to_recovery: u32,
}

const SLOT_SIZE: u32 = 4096 * 16;

/// Slot/bootloader shape of an [`update_world`] scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorldMode {
    /// Configuration A: two bootable slots, newest valid image booted in
    /// place.
    Ab,
    /// Configuration B: one bootable slot plus a staging slot swapped at
    /// boot, optionally backed by a recovery slot (Fig. 6) provisioned
    /// with the signed v1 image on a second device.
    StaticSwap {
        /// Whether a recovery slot is provisioned.
        recovery: bool,
    },
    /// Multi-component device: `components` (bootable, staging) slot
    /// pairs plus a commit-journal slot, updated transactionally through
    /// [`Bootloader::stage_component_set`] and journal replay.
    Multi {
        /// Number of components (2..=[`upkit_manifest::MAX_COMPONENTS`]).
        components: u8,
    },
}

/// Parameters of [`update_world`]: everything that determines the
/// scenario, so two worlds built from equal configs behave identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorldConfig {
    /// RNG seed fixing the signing keys and firmware bytes.
    pub seed: u64,
    /// Size of the base (v1) firmware image in bytes.
    pub firmware_size: usize,
    /// Slot size in bytes (a multiple of the 4 KiB sector size).
    pub slot_size: u32,
    /// Slot/bootloader shape.
    pub mode: WorldMode,
}

impl WorldConfig {
    /// The default A/B power-loss world: 40 kB firmware, 64 KiB slots —
    /// the configuration [`run_power_loss_scenario`] uses.
    #[must_use]
    pub fn ab(seed: u64) -> Self {
        Self {
            seed,
            firmware_size: 40_000,
            slot_size: SLOT_SIZE,
            mode: WorldMode::Ab,
        }
    }

    /// A static-swap world, optionally with a provisioned recovery slot.
    #[must_use]
    pub fn static_swap(seed: u64, recovery: bool) -> Self {
        Self {
            seed,
            firmware_size: 40_000,
            slot_size: SLOT_SIZE,
            mode: WorldMode::StaticSwap { recovery },
        }
    }

    /// A multi-component world: `components` slot pairs plus a journal,
    /// with `firmware_size` bytes per component module.
    #[must_use]
    pub fn multi(seed: u64, components: u8) -> Self {
        Self {
            seed,
            firmware_size: 20_000,
            slot_size: SLOT_SIZE,
            mode: WorldMode::Multi { components },
        }
    }
}

/// Sector size every scenario world uses.
const WORLD_SECTOR: u32 = 4096;

/// Geometry of the internal flash an [`update_world`] expects: two slots
/// (plus a journal sector per component pair in multi mode), zero timing
/// (the scenarios measure bytes, not time).
#[must_use]
pub fn world_geometry(config: &WorldConfig) -> FlashGeometry {
    let size = match config.mode {
        WorldMode::Ab | WorldMode::StaticSwap { .. } => config.slot_size * 2,
        WorldMode::Multi { components } => {
            config.slot_size * 2 * u32::from(components) + WORLD_SECTOR
        }
    };
    FlashGeometry {
        size,
        sector_size: WORLD_SECTOR,
        read_micros_per_byte: 0,
        write_micros_per_byte: 0,
        erase_micros_per_sector: 0,
    }
}

/// The prepared v2 release of a multi-component world: the signed commit
/// record plus the per-component images it promises, ready for
/// [`Bootloader::stage_component_set`].
#[derive(Clone)]
pub struct MultiUpdate {
    /// The dual-signed multi-payload manifest (the commit record).
    pub record: SignedMultiManifest,
    /// Per-component images, in the record's (dependency) order.
    pub images: Vec<ComponentImage>,
    /// The device's component slot pairs, in dependency order.
    pub components: Vec<ComponentSlots>,
    /// The commit-journal slot.
    pub journal: SlotId,
}

/// A complete push-update world: servers, a provisioned device running
/// v1, and v2 published — everything short of running the session.
pub struct UpdateWorld {
    /// The update server with v1 and v2 published.
    pub server: upkit_core::generation::UpdateServer,
    /// The crypto backend shared by agent and bootloader.
    pub backend: Arc<TinyCryptBackend>,
    /// Trust anchors (vendor + server verifying keys).
    pub anchors: TrustAnchors,
    /// The device's memory layout, provisioned at v1.
    pub layout: MemoryLayout,
    /// The device's update agent.
    pub agent: UpdateAgent,
    /// The update plan the session runs with.
    pub plan: UpdatePlan,
    /// The bootloader configuration matching the layout's mode.
    pub boot_config: BootConfig,
    /// The version installed before the update (the never-brick floor).
    pub base_version: Version,
    /// The v2 firmware image the session propagates.
    pub firmware_v2: Vec<u8>,
    /// The prepared multi-component release (multi worlds only).
    pub multi: Option<MultiUpdate>,
}

/// Builds an [`UpdateWorld`] from `config` over the given internal
/// flash device (which must have [`world_geometry`]'s shape). Passing
/// the device in lets callers interpose proxies — the chaos explorer
/// wraps a `FaultFlash` here.
#[must_use]
pub fn update_world(config: &WorldConfig, internal: Box<dyn FlashDevice>) -> UpdateWorld {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let vendor = upkit_core::generation::VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = upkit_core::generation::UpdateServer::new(SigningKey::generate(&mut rng));
    let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());
    let backend = Arc::new(TinyCryptBackend);

    let generator = FirmwareGenerator::new(config.seed);
    let v1 = generator.base(config.firmware_size);
    let v2 = generator.os_version_change(&v1);

    let (mut layout, mode, recovery_slot) = match config.mode {
        WorldMode::Ab => {
            let layout = configuration_a(internal, config.slot_size).expect("valid layout");
            let mode = BootMode::AB {
                slots: vec![standard::SLOT_A, standard::SLOT_B],
            };
            (layout, mode, None)
        }
        WorldMode::StaticSwap { recovery } => {
            let mut layout = MemoryLayout::new();
            let dev = layout.add_device(internal);
            layout
                .add_slot(SlotSpec {
                    id: standard::SLOT_A,
                    kind: SlotKind::Bootable,
                    device: dev,
                    offset: 0,
                    size: config.slot_size,
                })
                .expect("valid layout");
            layout
                .add_slot(SlotSpec {
                    id: standard::SLOT_B,
                    kind: SlotKind::NonBootable,
                    device: dev,
                    offset: config.slot_size,
                    size: config.slot_size,
                })
                .expect("valid layout");
            let recovery_slot = recovery.then(|| {
                // The recovery image lives on its own (un-faulted) device:
                // a known-good copy kept out of the update's blast radius.
                let ext = layout.add_device(Box::new(SimFlash::new(FlashGeometry {
                    size: config.slot_size,
                    sector_size: 4096,
                    read_micros_per_byte: 0,
                    write_micros_per_byte: 0,
                    erase_micros_per_sector: 0,
                })));
                layout
                    .add_slot(SlotSpec {
                        id: standard::RECOVERY,
                        kind: SlotKind::NonBootable,
                        device: ext,
                        offset: 0,
                        size: config.slot_size,
                    })
                    .expect("valid layout");
                standard::RECOVERY
            });
            let mode = BootMode::Static {
                bootable: standard::SLOT_A,
                staging: standard::SLOT_B,
                swap: true,
            };
            (layout, mode, recovery_slot)
        }
        WorldMode::Multi { components } => {
            let layout = configuration_multi(internal, components, config.slot_size, WORLD_SECTOR)
                .expect("valid layout");
            let slots: Vec<ComponentSlots> = (0..components)
                .map(|c| ComponentSlots {
                    bootable: SlotId(c * 2),
                    staging: SlotId(c * 2 + 1),
                })
                .collect();
            let mode = BootMode::MultiComponent {
                components: slots,
                journal: SlotId(components * 2),
            };
            (layout, mode, None)
        }
    };

    // Install v1 (signed), and prepare v2: per component in multi mode
    // (module 0 = base OS first — dependency order), otherwise in slot A
    // and in the recovery slot if present.
    let multi = if let WorldMode::Multi { components } = config.mode {
        let mut entries = Vec::new();
        let mut images = Vec::new();
        for c in 0..components {
            let module_v1 = generator.module(c, config.firmware_size);
            install_signed(&mut layout, SlotId(c * 2), &vendor, &server, &module_v1);
            let module_v2 = generator.module_version_change(c, &module_v1);
            let manifest = Manifest {
                device_id: DEVICE_ID,
                nonce: 0,
                old_version: Version(0),
                version: Version(2),
                size: module_v2.len() as u32,
                payload_size: module_v2.len() as u32,
                digest: sha256(&module_v2),
                link_offset: LINK_OFFSET,
                app_id: APP_ID,
            };
            entries.push(ComponentEntry {
                component_id: 0x10 + u32::from(c),
                version: Version(2),
                size: module_v2.len() as u32,
                digest: sha256(&module_v2),
                slot: c * 2,
            });
            images.push(ComponentImage {
                signed_manifest: SignedManifest {
                    manifest,
                    vendor_signature: vendor.sign_manifest_core(&manifest),
                    server_signature: server.sign_manifest(&manifest),
                },
                firmware: module_v2,
            });
        }
        let table = ComponentTable::new(entries).expect("valid component set");
        let total = u32::try_from(table.total_size()).expect("set fits u32");
        let manifest = Manifest {
            device_id: DEVICE_ID,
            nonce: 0,
            old_version: Version(1),
            version: Version(2),
            size: total,
            payload_size: total,
            digest: table.set_digest(),
            link_offset: LINK_OFFSET,
            app_id: APP_ID,
        };
        let set = MultiManifest {
            manifest,
            components: Some(table),
        };
        let record = SignedMultiManifest {
            vendor_signature: vendor.sign_multi(&set),
            server_signature: server.sign_multi(&set),
            multi: set,
        };
        Some(MultiUpdate {
            record,
            images,
            components: (0..components)
                .map(|c| ComponentSlots {
                    bootable: SlotId(c * 2),
                    staging: SlotId(c * 2 + 1),
                })
                .collect(),
            journal: SlotId(components * 2),
        })
    } else {
        install_signed(&mut layout, standard::SLOT_A, &vendor, &server, &v1);
        if let Some(recovery) = recovery_slot {
            install_signed(&mut layout, recovery, &vendor, &server, &v1);
        }
        None
    };
    server.publish(vendor.release(v1.clone(), Version(1), LINK_OFFSET, APP_ID));
    server.publish(vendor.release(v2.clone(), Version(2), LINK_OFFSET, APP_ID));

    let agent = UpdateAgent::new(
        backend.clone(),
        anchors,
        AgentConfig {
            device_id: DEVICE_ID,
            app_id: APP_ID,
            supports_differential: false,
            content_key: None,
        },
    );
    let plan = UpdatePlan {
        target_slot: standard::SLOT_B,
        current_slot: standard::SLOT_A,
        installed_version: Version(1),
        installed_size: v1.len() as u32,
        allowed_link_offsets: vec![LINK_OFFSET],
        max_firmware_size: config.slot_size - FIRMWARE_OFFSET,
    };
    let boot_config = BootConfig {
        device_id: DEVICE_ID,
        app_id: APP_ID,
        allowed_link_offsets: vec![LINK_OFFSET],
        max_firmware_size: config.slot_size - FIRMWARE_OFFSET,
        mode,
        recovery_slot,
    };

    // Measure only update-time flash traffic, not provisioning.
    layout.reset_stats();

    UpdateWorld {
        server,
        backend,
        anchors,
        layout,
        agent,
        plan,
        boot_config,
        base_version: Version(1),
        firmware_v2: v2,
        multi,
    }
}

impl UpdateWorld {
    /// The bootloader matching this world's configuration.
    #[must_use]
    pub fn bootloader(&self) -> Bootloader {
        Bootloader::new(self.backend.clone(), self.anchors, self.boot_config.clone())
    }

    /// Runs one full push session over a reliable BLE link. In a multi
    /// world the "session" is the transactional staging phase instead:
    /// [`Bootloader::stage_component_set`] with the prepared record.
    pub fn run_push_once(&mut self, nonce: u32) -> SessionOutcome {
        if self.multi.is_some() {
            let _ = nonce;
            return self.run_multi_stage();
        }
        let mut phone = Smartphone::new();
        let report = run_push_session(
            &self.server,
            &mut phone,
            &mut self.agent,
            &mut self.layout,
            self.plan.clone(),
            nonce,
            &LinkProfile::ble_gatt(),
        );
        report.outcome
    }

    /// Power restored: a single reboot, reporting what the bootloader
    /// salvaged.
    pub fn reboot(&mut self) -> Option<Version> {
        self.layout.disarm_power_cuts();
        self.bootloader()
            .boot(&mut self.layout)
            .ok()
            .map(|o| o.version)
    }

    /// Power restored: reboot until the boot decision is stable (see
    /// [`Bootloader::boot_to_fixed_point`]).
    pub fn reboot_to_fixed_point(
        &mut self,
        max_boots: u32,
    ) -> Result<FixedPointReport, FixedPointError> {
        self.bootloader()
            .boot_to_fixed_point(&mut self.layout, max_boots)
    }

    /// Whether `slot` currently holds a fully valid (dual-signed,
    /// digest-matching) image.
    pub fn slot_verifies(&mut self, slot: SlotId) -> bool {
        self.bootloader()
            .verify_slot(&mut self.layout, slot)
            .is_ok()
    }

    /// Stages the prepared multi-component set — phase one of the
    /// transactional install; the flip happens at the next reboot. A
    /// power cut (or failed health check) surfaces as `Incomplete`: the
    /// commit record was never written, the old set stays active.
    pub fn run_multi_stage(&mut self) -> SessionOutcome {
        let multi = self.multi.as_ref().expect("multi-component world");
        let record = multi.record.clone();
        let images = multi.images.clone();
        match self
            .bootloader()
            .stage_component_set(&mut self.layout, &record, &images)
        {
            Ok(()) => SessionOutcome::Complete,
            Err(_) => SessionOutcome::Incomplete,
        }
    }

    /// Per-component bootable-slot versions (`None` = that slot does not
    /// verify). Empty for single-component worlds.
    pub fn component_versions(&mut self) -> Vec<Option<Version>> {
        let Some(multi) = &self.multi else {
            return Vec::new();
        };
        let slots: Vec<SlotId> = multi.components.iter().map(|c| c.bootable).collect();
        let boot = self.bootloader();
        slots
            .into_iter()
            .map(|slot| {
                boot.verify_slot(&mut self.layout, slot)
                    .ok()
                    .map(|signed| signed.manifest.version)
            })
            .collect()
    }

    /// The never-mixed-set check: true when the bootable set is torn —
    /// any component failing verification or disagreeing on version.
    /// Always false for single-component worlds.
    pub fn component_set_mixed(&mut self) -> bool {
        let versions = self.component_versions();
        if versions.is_empty() {
            return false;
        }
        let Some(first) = versions[0] else {
            return true;
        };
        versions.iter().any(|v| *v != Some(first))
    }
}

/// Reboot budget generous enough for every scenario shape: A/B needs 1
/// boot, a static swap needs 2, a double-cut recovery a few more.
pub const DEFAULT_MAX_BOOTS: u32 = 8;

/// Runs a push update on an A/B device, cutting power after
/// `cut_after_flash_bytes` bytes of flash programming, then reboots to a
/// fixed point and reports what the bootloader managed to boot.
#[must_use]
pub fn run_power_loss_scenario(cut_after_flash_bytes: u64, seed: u64) -> PowerLossReport {
    let config = WorldConfig::ab(seed);
    let mut world = update_world(&config, Box::new(SimFlash::new(world_geometry(&config))));

    // Arm the cut *before* the session: erases and writes both consume the
    // budget, so the cut can land in StartUpdate, the header write, or the
    // pipeline.
    world
        .layout
        .device_mut(0)
        .expect("internal flash")
        .arm_power_cut_after(cut_after_flash_bytes);

    let outcome = world.run_push_once(seed as u32 | 1);
    let session_interrupted = !matches!(outcome, SessionOutcome::Complete);
    let bytes_written_before_cut = world.layout.total_stats().bytes_written;

    let (booted_version, boots_to_recovery) = match world.reboot_to_fixed_point(DEFAULT_MAX_BOOTS) {
        Ok(report) => (Some(report.outcome.version), report.boots),
        Err(_) => (None, 0),
    };

    PowerLossReport {
        session_interrupted,
        booted_version,
        bytes_written_before_cut,
        boots_to_recovery,
    }
}

/// Runs a push update on an A/B device, abandoning the stepped session
/// after `cut_after_events` link events (the device loses power *between*
/// events rather than mid-flash-write), then reboots and reports what the
/// bootloader managed to boot.
///
/// Only the session layer makes this cut model expressible: the legacy
/// drivers ran the whole Fig. 2 sequence inside one call, so a failure
/// could only ever be injected below them, in the flash.
#[must_use]
pub fn run_power_loss_at_event(cut_after_events: u64, seed: u64) -> PowerLossReport {
    let config = WorldConfig::ab(seed);
    let mut world = update_world(&config, Box::new(SimFlash::new(world_geometry(&config))));

    let link = LinkProfile::ble_gatt();
    let mut phone = Smartphone::new();
    let mut session = PushSession::new(LossyLink::reliable(link), RetryPolicy::for_link(&link), 0);
    let mut endpoints = PushEndpoints::new(
        &world.server,
        &mut phone,
        &mut world.agent,
        &mut world.layout,
        world.plan.clone(),
        seed as u32 | 1,
    );
    let mut events = 0u64;
    let session_interrupted = loop {
        if events >= cut_after_events {
            // Power dies here; the session is simply abandoned.
            break true;
        }
        match session.step(&mut endpoints) {
            Step::Progress(_) => events += 1,
            Step::Done(report) => break !matches!(report.outcome, SessionOutcome::Complete),
        }
    };
    let bytes_written_before_cut = world.layout.total_stats().bytes_written;

    let (booted_version, boots_to_recovery) = match world.reboot_to_fixed_point(DEFAULT_MAX_BOOTS) {
        Ok(report) => (Some(report.outcome.version), report.boots),
        Err(_) => (None, 0),
    };

    PowerLossReport {
        session_interrupted,
        booted_version,
        bytes_written_before_cut,
        boots_to_recovery,
    }
}

fn install_signed(
    layout: &mut MemoryLayout,
    slot: SlotId,
    vendor: &upkit_core::generation::VendorServer,
    server: &upkit_core::generation::UpdateServer,
    firmware: &[u8],
) {
    let manifest = Manifest {
        device_id: DEVICE_ID,
        nonce: 0,
        old_version: Version(0),
        version: Version(1),
        size: firmware.len() as u32,
        payload_size: firmware.len() as u32,
        digest: sha256(firmware),
        link_offset: LINK_OFFSET,
        app_id: APP_ID,
    };
    let signed = SignedManifest {
        manifest,
        vendor_signature: vendor.sign_manifest_core(&manifest),
        server_signature: server.sign_manifest(&manifest),
    };
    layout.erase_slot(slot).expect("fresh flash");
    upkit_core::image::write_manifest(layout, slot, &signed).expect("fresh flash");
    layout
        .write_slot(slot, FIRMWARE_OFFSET, firmware)
        .expect("slot fits");
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cut_during_slot_erase_keeps_device_bootable() {
        // StartUpdate erases slot B; the budget dies inside the erase.
        let report = run_power_loss_scenario(1_000, 200);
        assert!(report.session_interrupted);
        assert_eq!(report.booted_version, Some(Version(1)));
    }

    #[test]
    fn cut_during_firmware_write_keeps_device_bootable() {
        // Slot B erase = 16 sectors * 4096 = 65536 budget; manifest header
        // write + some firmware, then cut.
        let report = run_power_loss_scenario(66_000 + 5_000, 201);
        assert!(report.session_interrupted);
        assert_eq!(report.booted_version, Some(Version(1)));
    }

    #[test]
    fn generous_budget_lets_update_complete() {
        let report = run_power_loss_scenario(100_000_000, 202);
        assert!(!report.session_interrupted);
        assert_eq!(report.booted_version, Some(Version(2)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        // The never-brick convergence property: from ANY generated cut
        // point (not just hand-picked stride values), the reboot loop
        // reaches a stable bootable version within a small, bounded
        // number of boots. The 0..120_000 range spans the whole write
        // timeline of the 40 kB scenario — slot erase (65 536 budget),
        // header, firmware body — and beyond it (cut never fires).
        #[test]
        fn any_cut_point_converges_to_a_bootable_version(
            cut in 0u64..120_000,
            seed in 0u64..1_024,
        ) {
            let report = run_power_loss_scenario(cut, 300 + seed);
            prop_assert!(
                matches!(report.booted_version, Some(Version(1)) | Some(Version(2))),
                "cut at {}: booted {:?}", cut, report.booted_version
            );
            // A/B recovery never moves flash: the very first boot after
            // power returns must already be the fixed point.
            prop_assert_eq!(report.boots_to_recovery, 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        // Bounded-boots convergence for multi-component worlds: from ANY
        // generated cut point of the staging phase, the reboot loop
        // settles on a COMPLETE set — all components verifying the same
        // version — within the standard boot budget. (Cuts inside the
        // boot-time journal replay are covered exhaustively by the chaos
        // explorer, which injects faults at recorded boot ops too.)
        #[test]
        fn multi_world_any_cut_point_converges_to_a_complete_set(
            cut in 0u64..60_000,
            seed in 0u64..256,
            components in 2u8..=3,
        ) {
            let config = WorldConfig {
                seed: 500 + seed,
                firmware_size: 6_000,
                slot_size: 4096 * 3,
                mode: WorldMode::Multi { components },
            };
            let mut world =
                update_world(&config, Box::new(SimFlash::new(world_geometry(&config))));
            world
                .layout
                .device_mut(0)
                .expect("internal flash")
                .arm_power_cut_after(cut);
            let _ = world.run_push_once(1);
            let report = world
                .reboot_to_fixed_point(DEFAULT_MAX_BOOTS)
                .expect("never brick");
            prop_assert!(
                matches!(report.outcome.version, Version(1) | Version(2)),
                "cut at {}: settled on {:?}", cut, report.outcome.version
            );
            prop_assert!(report.boots <= DEFAULT_MAX_BOOTS);
            let versions = world.component_versions();
            prop_assert!(
                !world.component_set_mixed(),
                "cut at {} left a mixed set: {:?}", cut, versions
            );
        }
    }

    #[test]
    fn event_cut_before_any_transfer_boots_v1() {
        // Cut before even the token exchange: slot B untouched.
        let report = run_power_loss_at_event(0, 210);
        assert!(report.session_interrupted);
        assert_eq!(report.booted_version, Some(Version(1)));
        assert_eq!(report.bytes_written_before_cut, 0);
    }

    #[test]
    fn event_cut_sweep_never_bricks() {
        // Cuts across the whole event timeline — during the token
        // exchange, mid-manifest, mid-payload, and far beyond the end
        // (where the session completes first): always v1 or v2.
        for cut in [0u64, 1, 2, 3, 5, 50, 120, 170, 100_000] {
            let report = run_power_loss_at_event(cut, 400 + cut);
            assert!(
                matches!(report.booted_version, Some(Version(1)) | Some(Version(2))),
                "event cut at {cut}: {:?}",
                report.booted_version
            );
        }
    }

    #[test]
    fn event_cut_beyond_session_end_completes_normally() {
        let report = run_power_loss_at_event(u64::MAX, 211);
        assert!(!report.session_interrupted);
        assert_eq!(report.booted_version, Some(Version(2)));
    }

    #[test]
    fn static_world_with_recovery_survives_a_wrecked_bootable_slot() {
        // The static-swap world's recovery slot restores a signed v1
        // when both regular slots are invalid.
        let config = WorldConfig::static_swap(215, true);
        let mut world = update_world(&config, Box::new(SimFlash::new(world_geometry(&config))));
        // Wreck slot A (clear bits across the manifest) and leave B empty.
        world.layout.erase_slot(standard::SLOT_A).unwrap();
        let report = world.reboot_to_fixed_point(DEFAULT_MAX_BOOTS).unwrap();
        assert_eq!(report.outcome.version, Version(1));
        assert_eq!(report.boots, 2, "boot 1 restores, boot 2 confirms");
        assert!(world.slot_verifies(standard::SLOT_A));
    }

    #[test]
    fn multi_world_stages_then_flips_the_whole_set() {
        let config = WorldConfig {
            seed: 220,
            firmware_size: 6_000,
            slot_size: 4096 * 3,
            mode: WorldMode::Multi { components: 3 },
        };
        let mut world = update_world(&config, Box::new(SimFlash::new(world_geometry(&config))));
        assert_eq!(world.component_versions(), vec![Some(Version(1)); 3]);

        assert!(matches!(world.run_push_once(1), SessionOutcome::Complete));
        // Phase one only staged: the bootable set is still v1.
        assert_eq!(world.component_versions(), vec![Some(Version(1)); 3]);
        assert!(!world.component_set_mixed());

        let report = world.reboot_to_fixed_point(DEFAULT_MAX_BOOTS).unwrap();
        assert_eq!(report.outcome.version, Version(2));
        assert_eq!(world.component_versions(), vec![Some(Version(2)); 3]);
        assert!(!world.component_set_mixed());
    }

    #[test]
    fn multi_world_cut_mid_staging_keeps_complete_old_set() {
        let config = WorldConfig {
            seed: 221,
            firmware_size: 6_000,
            slot_size: 4096 * 3,
            mode: WorldMode::Multi { components: 2 },
        };
        let mut world = update_world(&config, Box::new(SimFlash::new(world_geometry(&config))));
        // The cut lands inside the second component's staging write.
        world
            .layout
            .device_mut(0)
            .expect("internal flash")
            .arm_power_cut_after(20_000);
        assert!(matches!(world.run_push_once(1), SessionOutcome::Incomplete));
        let report = world.reboot_to_fixed_point(DEFAULT_MAX_BOOTS).unwrap();
        assert_eq!(report.outcome.version, Version(1));
        assert_eq!(world.component_versions(), vec![Some(Version(1)); 2]);
        assert!(!world.component_set_mixed());
    }

    #[test]
    fn power_cut_counters_match_recovery_expectations() {
        use upkit_trace::{Event, MemorySink, Tracer};

        // One tracer across the cut, the recovery boot, and the retried
        // update: the counter ledger must tell the same story the
        // scenario's return values do.
        let config = WorldConfig::ab(212);
        let mut world = update_world(&config, Box::new(SimFlash::new(world_geometry(&config))));
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::with_sink(Box::new(Arc::clone(&sink)));
        world.layout.set_tracer(tracer.clone());

        // Phase 1 — the cut lands inside slot B's very first sector erase
        // (1000-byte budget < one 4096-byte sector): no sector completed,
        // so no erase and no firmware byte may be charged.
        world
            .layout
            .device_mut(0)
            .expect("internal flash")
            .arm_power_cut_after(1_000);
        let outcome = world.run_push_once(213);
        assert!(!matches!(outcome, SessionOutcome::Complete));
        let at_cut = tracer.counters().snapshot();
        assert_eq!(
            at_cut.total_erases(),
            0,
            "no sector completed before the cut"
        );
        assert_eq!(at_cut.total_flash_writes(), 0);
        assert_eq!(at_cut.boots, 0);

        // Phase 2 — power restored: the bootloader re-verifies slot A
        // (both manifest signatures) and boots v1. The ledger gains one
        // boot, two signature checks, and a Boot event for slot A.
        assert_eq!(world.reboot(), Some(Version(1)));
        let after_boot = tracer.counters().snapshot();
        assert_eq!(after_boot.boots, 1);
        assert_eq!(
            after_boot.sig_verifications,
            at_cut.sig_verifications + 2,
            "recovery verifies exactly the booted slot's two signatures"
        );
        assert!(sink.snapshot().iter().any(|r| matches!(
            r.event,
            Event::Boot { slot, version } if slot == standard::SLOT_A.0 && version == 1
        )));

        // Phase 3 — the rollout retries with a fresh agent over the same
        // (reliable) link: the retried StartUpdate re-erases all of slot B,
        // writes the firmware, and needs no link-level retries.
        world.agent = UpdateAgent::new(
            world.backend.clone(),
            world.anchors,
            AgentConfig {
                device_id: DEVICE_ID,
                app_id: APP_ID,
                supports_differential: false,
                content_key: None,
            },
        );
        let outcome = world.run_push_once(214);
        assert!(matches!(outcome, SessionOutcome::Complete));
        let after_retry = tracer.counters().snapshot();
        let slot_b_sectors = u64::from(SLOT_SIZE / 4096);
        assert_eq!(
            after_retry.total_erases() - after_boot.total_erases(),
            slot_b_sectors,
            "the retry re-erases the whole target slot"
        );
        assert!(after_retry.total_flash_writes() > after_boot.total_flash_writes());
        assert_eq!(after_retry.retries, 0, "reliable link: no retransmissions");

        // The retried update boots v2.
        assert_eq!(world.reboot(), Some(Version(2)));
        assert_eq!(tracer.counters().snapshot().boots, 2);
    }
}
