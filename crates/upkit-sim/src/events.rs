//! Virtual-clock event scheduler: thousands of in-flight update sessions
//! interleaved on one simulated timeline.
//!
//! The round-based fleet loop ([`crate::fleet`]) advances every device one
//! whole update per round — adoption is measured in "rounds", not time,
//! and no two transfers ever overlap. This module replaces that model for
//! timing studies: every device runs a resumable
//! [`PullSession`](upkit_net::PullSession), and a binary-heap virtual
//! clock pops whichever session's next link event is earliest, steps it
//! once, and re-inserts it at `now + cost`. Thousands of sessions are
//! genuinely concurrent on the virtual timeline, with per-session Bernoulli
//! loss and retransmission backoff interleaving naturally.
//!
//! **Determinism guarantee.** The final [`EventFleetReport`] is a pure
//! function of the [`EventFleetConfig`] — independent of heap tie-breaking
//! order (covered by a test that flips the tie-break direction). This
//! holds because sessions never share mutable state, each session's loss
//! pattern is a pure function of `(seed, stream, attempt)`
//! ([`upkit_net::LossyLink::drops`]), and every report field is an
//! order-independent aggregate (sums, maxima, and a post-hoc sweep over
//! per-session spans).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use upkit_compress::decompress;
use upkit_core::agent::{AgentError, AgentPhase, AgentState};
use upkit_core::generation::{UpdateServer, VendorServer};
use upkit_core::verifier::VerifyError;
use upkit_crypto::ecdsa::{SigningKey, VerifyingKey};
use upkit_crypto::sha256::sha256;
use upkit_manifest::{DeviceToken, Manifest, SignedManifest, Version, SIGNED_MANIFEST_LEN};
use upkit_net::lossy::splitmix64;
use upkit_net::{
    LinkProfile, LossyLink, PullSession, RetryPolicy, SessionEndpoints, SessionOutcome,
    SessionStream, Step, StreamResolution, Transport,
};
use upkit_trace::{Event, Tracer};

use crate::device::{APP_ID, LINK_OFFSET};
use crate::firmware::FirmwareGenerator;

/// Parameters of an event-driven v1→v2 update campaign.
#[derive(Clone, Copy, Debug)]
pub struct EventFleetConfig {
    /// Number of devices.
    pub devices: u32,
    /// Firmware size in bytes.
    pub firmware_size: usize,
    /// Whether devices advertise differential support.
    pub differential: bool,
    /// Per-attempt Bernoulli loss probability on every device's link.
    pub loss_rate: f64,
    /// Retransmission policy for every session.
    pub retry: RetryPolicy,
    /// Devices start their first poll uniformly inside this window
    /// (microseconds of virtual time).
    pub poll_window_micros: u64,
    /// Delay before a device whose session failed polls again.
    pub retry_poll_delay_micros: u64,
    /// Sessions a device attempts before giving up entirely.
    pub max_poll_attempts: u32,
    /// Whether devices check both manifest signatures.
    pub verify_signatures: bool,
    /// `true` = full protocol fidelity: every device requests its own
    /// device/nonce-bound manifest from the server (one ECDSA signature
    /// per request). `false` = scale mode: one canonical manifest is
    /// prepared up front and served to every session, and the device/nonce
    /// binding checks are skipped — the wire protocol, chunking, loss, and
    /// digest verification stay exact, enabling 10k–1M-session campaigns.
    pub device_bound_manifests: bool,
    /// Bucket width of the adoption histogram (0 = no histogram).
    pub adoption_bucket_micros: u64,
    /// Flips the heap's tie-breaking direction for equal timestamps.
    /// Exists to *prove* determinism (the report must not change), not to
    /// configure behaviour.
    pub reverse_tie_break: bool,
    /// Deterministic seed (keys, firmware content, loss streams, poll
    /// spread).
    pub seed: u64,
}

impl Default for EventFleetConfig {
    fn default() -> Self {
        Self {
            devices: 100,
            firmware_size: 4_000,
            differential: false,
            loss_rate: 0.0,
            retry: RetryPolicy::for_link(&LinkProfile::ieee802154_6lowpan()),
            poll_window_micros: 100_000,
            retry_poll_delay_micros: 5_000_000,
            max_poll_attempts: 5,
            verify_signatures: true,
            device_bound_manifests: true,
            adoption_bucket_micros: 0,
            reverse_tie_break: false,
            seed: 0xE7E7,
        }
    }
}

/// Result of an event-driven campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventFleetReport {
    /// Devices that completed the update.
    pub completed: u32,
    /// Devices that exhausted every poll attempt without completing.
    pub gave_up: u32,
    /// Total bytes that crossed any radio (both directions, all attempts).
    pub total_wire_bytes: u64,
    /// Link events processed across all sessions.
    pub events: u64,
    /// Virtual time at which the last session ended.
    pub makespan_micros: u64,
    /// Maximum number of sessions simultaneously in flight.
    pub peak_in_flight: u32,
    /// Cumulative completions per `adoption_bucket_micros` bucket (empty
    /// when no bucket width was configured).
    pub adoption: Vec<u32>,
}

/// Immutable campaign-wide context every session endpoint reads.
struct CampaignEnv {
    server: UpdateServer,
    vendor_key: VerifyingKey,
    server_key: VerifyingKey,
    /// The v1 image (differential patch base).
    base_image: Vec<u8>,
    latest: Version,
    verify_signatures: bool,
    device_bound_manifests: bool,
    /// Scale mode: the one canonical stream served to every session.
    canonical: Option<SessionStream>,
}

/// The campaign-wide verification context a lite device checks incoming
/// streams against. Shared read-only between [`events`](self) and the
/// multi-hop [`crate::topology`] simulator.
pub(crate) struct LiteVerifyCtx<'a> {
    pub(crate) vendor_key: &'a VerifyingKey,
    pub(crate) server_key: &'a VerifyingKey,
    /// The device's currently installed image (differential patch base).
    pub(crate) base_image: &'a [u8],
    pub(crate) verify_signatures: bool,
    /// Whether the device/nonce manifest binding is enforced (off in
    /// campaign/broadcast mode).
    pub(crate) device_bound: bool,
}

/// Per-device protocol state: the lightweight analogue of an
/// `UpdateAgent` + flash, mirroring `fleet::LiteDevice`'s checks but
/// driven chunk-by-chunk through [`SessionEndpoints`].
pub(crate) struct LiteState {
    pub(crate) device_id: u32,
    pub(crate) nonce_counter: u32,
    pub(crate) installed: Version,
    pub(crate) supports_differential: bool,
    /// Completed installs (must end at one per version step — the
    /// duplicate-install guard the duty-cycle tests pin).
    pub(crate) installs: u32,
    /// The last fully verified firmware image (what the device now runs).
    pub(crate) last_installed: Option<Vec<u8>>,
    manifest_buf: Vec<u8>,
    accepted: Option<Manifest>,
    payload: Vec<u8>,
}

impl LiteState {
    pub(crate) fn new(device_id: u32, supports_differential: bool) -> Self {
        Self {
            device_id,
            // Same per-device nonce schedule as `SimDevice`.
            nonce_counter: device_id.wrapping_mul(2_654_435_761),
            installed: Version(1),
            supports_differential,
            installs: 0,
            last_installed: None,
            manifest_buf: Vec::new(),
            accepted: None,
            payload: Vec::new(),
        }
    }

    /// Discards any half-received update (a fresh session starts clean).
    pub(crate) fn reset_transfer(&mut self) {
        self.manifest_buf.clear();
        self.accepted = None;
        self.payload.clear();
    }

    /// The next device token this device would present.
    pub(crate) fn next_token(&mut self) -> DeviceToken {
        self.nonce_counter = self.nonce_counter.wrapping_add(0x9E37_79B9) | 1;
        DeviceToken {
            device_id: self.device_id,
            nonce: self.nonce_counter,
            current_version: if self.supports_differential {
                self.installed
            } else {
                Version(0)
            },
        }
    }

    /// Accepts one link chunk: accumulates and verifies the manifest
    /// region, then the payload region, reconstructing (and, for
    /// differential payloads, patching) the firmware and digest-checking
    /// it against the accepted manifest. The full `fleet::LiteDevice`
    /// check sequence, driven incrementally.
    pub(crate) fn deliver_chunk(
        &mut self,
        ctx: &LiteVerifyCtx<'_>,
        chunk: &[u8],
    ) -> Result<AgentPhase, AgentError> {
        if self.accepted.is_none() {
            // Manifest region: accumulate, then verify once complete.
            self.manifest_buf.extend_from_slice(chunk);
            if self.manifest_buf.len() < SIGNED_MANIFEST_LEN {
                return Ok(AgentPhase::NeedMore);
            }
            let signed = SignedManifest::from_bytes(&self.manifest_buf)
                .map_err(|_| AgentError::Verify(VerifyError::VendorSignature))?;
            let manifest = signed.manifest;
            if ctx.device_bound {
                if manifest.device_id != self.device_id {
                    return Err(AgentError::Verify(VerifyError::WrongDevice));
                }
                if manifest.nonce != self.nonce_counter {
                    return Err(AgentError::Verify(VerifyError::WrongNonce));
                }
            }
            if manifest.version <= self.installed {
                return Err(AgentError::Verify(VerifyError::StaleVersion));
            }
            if ctx.verify_signatures
                && signed
                    .verify_with_keys(ctx.vendor_key, ctx.server_key)
                    .is_err()
            {
                return Err(AgentError::Verify(VerifyError::VendorSignature));
            }
            self.accepted = Some(manifest);
            return Ok(AgentPhase::ManifestAccepted);
        }

        // The payload region is only entered after the manifest was
        // accepted above; losing it would be state-machine corruption.
        // Surface a typed error instead of panicking mid-campaign.
        let Some(manifest) = self.accepted.as_ref() else {
            debug_assert!(false, "payload chunk delivered before manifest acceptance");
            return Err(AgentError::WrongState(AgentState::ReceiveFirmware));
        };
        if self.payload.len() + chunk.len() > manifest.payload_size as usize {
            return Err(AgentError::TooMuchData);
        }
        self.payload.extend_from_slice(chunk);
        if self.payload.len() < manifest.payload_size as usize {
            return Ok(AgentPhase::NeedMore);
        }

        // Whole payload arrived: reconstruct and digest-verify.
        let firmware = if manifest.old_version.0 == 0 {
            self.payload.clone()
        } else {
            let Ok(patch_stream) = decompress(&self.payload) else {
                return Err(AgentError::Verify(VerifyError::DigestMismatch));
            };
            let Ok(firmware) = upkit_delta::patch(ctx.base_image, &patch_stream) else {
                return Err(AgentError::Verify(VerifyError::DigestMismatch));
            };
            firmware
        };
        if sha256(&firmware) != manifest.digest || firmware.len() as u32 != manifest.size {
            return Err(AgentError::Verify(VerifyError::DigestMismatch));
        }
        self.installed = manifest.version;
        self.installs += 1;
        self.last_installed = Some(firmware);
        Ok(AgentPhase::Complete)
    }
}

struct LiteEndpoints<'a> {
    env: &'a CampaignEnv,
    state: &'a mut LiteState,
}

impl SessionEndpoints for LiteEndpoints<'_> {
    fn request_token(&mut self) -> Result<DeviceToken, AgentError> {
        Ok(self.state.next_token())
    }

    fn resolve_stream(&mut self, token: &DeviceToken) -> StreamResolution {
        if let Some(canonical) = &self.env.canonical {
            // Scale mode: serve the canonical stream unless the device is
            // already current.
            if self.state.installed >= self.env.latest {
                return StreamResolution::NoUpdate;
            }
            return StreamResolution::Stream(canonical.clone());
        }
        let Some(prepared) = self.env.server.prepare_update(token) else {
            return StreamResolution::NoUpdate;
        };
        let stream = prepared.image.to_bytes();
        let manifest_len = SIGNED_MANIFEST_LEN.min(stream.len());
        let payload = stream[manifest_len..].to_vec();
        let mut manifest = stream;
        manifest.truncate(manifest_len);
        StreamResolution::Stream(SessionStream { manifest, payload })
    }

    fn deliver(&mut self, chunk: &[u8]) -> Result<AgentPhase, AgentError> {
        let ctx = LiteVerifyCtx {
            vendor_key: &self.env.vendor_key,
            server_key: &self.env.server_key,
            base_image: &self.env.base_image,
            verify_signatures: self.env.verify_signatures,
            device_bound: self.env.device_bound_manifests,
        };
        self.state.deliver_chunk(&ctx, chunk)
    }
}

/// One device's scheduler-side bookkeeping.
struct DeviceSlot {
    state: LiteState,
    session: Option<PullSession>,
    session_started_at: u64,
    poll_attempts: u32,
    completed_at: Option<u64>,
    gave_up: bool,
}

/// Runs an event-driven v1→v2 campaign: every device's pull session is
/// stepped one link event at a time on a shared virtual clock, so
/// thousands of transfers are concurrently in flight.
///
/// # Panics
///
/// Panics on internally impossible configurations (zero devices is fine;
/// firmware must fit in memory).
#[must_use]
pub fn run_event_rollout(config: &EventFleetConfig) -> EventFleetReport {
    run_event_rollout_traced(config, &Tracer::disabled())
}

/// [`run_event_rollout`] with observability: scheduler dispatches, session
/// events, and link counters are routed through `tracer`. The tracer's
/// virtual clock is pushed forward (never back) to the heap's event times,
/// so merged traces stay monotone.
#[must_use]
pub fn run_event_rollout_traced(config: &EventFleetConfig, tracer: &Tracer) -> EventFleetReport {
    // --- World: same derivation scheme as the round-based fleet ----------
    let mut rng = StdRng::seed_from_u64(config.seed);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));

    let generator = FirmwareGenerator::new(config.seed ^ 0xF00D);
    let v1 = generator.base(config.firmware_size);
    let v2 = generator.os_version_change(&v1);
    server.publish(vendor.release(v1.clone(), Version(1), LINK_OFFSET, APP_ID));
    server.publish(vendor.release(v2, Version(2), LINK_OFFSET, APP_ID));

    let canonical = if config.device_bound_manifests {
        None
    } else {
        // Scale mode: prepare one stream up front (one ECDSA signature for
        // the whole campaign instead of one per device).
        let token = DeviceToken {
            device_id: 0,
            nonce: 1,
            current_version: if config.differential {
                Version(1)
            } else {
                Version(0)
            },
        };
        let prepared = server
            .prepare_update(&token)
            .expect("v2 is published and newer");
        let stream = prepared.image.to_bytes();
        let manifest_len = SIGNED_MANIFEST_LEN.min(stream.len());
        let payload = stream[manifest_len..].to_vec();
        let mut manifest = stream;
        manifest.truncate(manifest_len);
        Some(SessionStream { manifest, payload })
    };

    let vendor_key = vendor.verifying_key();
    let server_key = server.verifying_key();
    let env = CampaignEnv {
        server,
        vendor_key,
        server_key,
        base_image: v1,
        latest: Version(2),
        verify_signatures: config.verify_signatures,
        device_bound_manifests: config.device_bound_manifests,
        canonical,
    };

    let link = LinkProfile::ieee802154_6lowpan();
    let lossy = LossyLink::bernoulli(link, config.loss_rate, config.seed);

    // --- Devices and their first poll times -------------------------------
    let device_count = config.devices as usize;
    let mut slots: Vec<DeviceSlot> = (0..config.devices)
        .map(|i| DeviceSlot {
            state: LiteState::new(0x1000 + i, config.differential),
            session: None,
            session_started_at: 0,
            poll_attempts: 0,
            completed_at: None,
            gave_up: false,
        })
        .collect();

    // Heap of (wake time, tie) — tie encodes the device index, optionally
    // reversed, purely to prove the report ignores tie-break order.
    let tie = |idx: u32| -> u32 {
        if config.reverse_tie_break {
            u32::MAX - idx
        } else {
            idx
        }
    };
    let untie = |t: u32| -> u32 {
        if config.reverse_tie_break {
            u32::MAX - t
        } else {
            t
        }
    };
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::with_capacity(device_count);
    for (i, _) in slots.iter().enumerate() {
        let spread = if config.poll_window_micros == 0 {
            0
        } else {
            // Deterministic per-device start, uniform over the window.
            splitmix64(config.seed ^ 0x57A2_7000u64.wrapping_add(i as u64))
                % config.poll_window_micros
        };
        heap.push(Reverse((spread, tie(i as u32))));
    }

    // --- Event loop --------------------------------------------------------
    let mut events = 0u64;
    let mut total_wire_bytes = 0u64;
    let mut makespan_micros = 0u64;
    let mut spans: Vec<(u64, u64)> = Vec::with_capacity(device_count);
    let mut completion_times: Vec<u64> = Vec::new();

    while let Some(Reverse((now, t))) = heap.pop() {
        let idx = untie(t) as usize;
        let slot = &mut slots[idx];
        // The heap pops in non-decreasing time order, so this only ever
        // pushes the trace clock forward.
        tracer.advance_now_to(now);

        if slot.session.is_none() {
            // A poll fires: open a fresh session. The loss stream is unique
            // per (device, attempt) so no session's pattern depends on any
            // other's, or on when it runs.
            let stream_id = (idx as u64) << 16 | u64::from(slot.poll_attempts);
            let mut session = PullSession::new(lossy, config.retry, stream_id);
            session.set_tracer(tracer.clone());
            slot.session = Some(session);
            slot.session_started_at = now;
            slot.poll_attempts += 1;
            slot.state.reset_transfer();
            let device = u64::from(slot.state.device_id);
            tracer.emit(|| Event::SchedulerDispatch {
                device,
                at_micros: now,
            });
        }

        let Some(session) = slot.session.as_mut() else {
            debug_assert!(false, "session just ensured above");
            continue;
        };
        let step = {
            let mut endpoints = LiteEndpoints {
                env: &env,
                state: &mut slot.state,
            };
            session.step(&mut endpoints)
        };
        match step {
            Step::Progress(event) => {
                events += 1;
                heap.push(Reverse((now + event.cost_micros, t)));
            }
            Step::Done(report) => {
                let Some(session) = slot.session.take() else {
                    debug_assert!(false, "session was stepped above");
                    continue;
                };
                let end = slot.session_started_at + session.virtual_elapsed_micros();
                spans.push((slot.session_started_at, end));
                makespan_micros = makespan_micros.max(end);
                total_wire_bytes +=
                    report.accounting.bytes_to_device + report.accounting.bytes_from_device;
                let device = u64::from(slot.state.device_id);
                match report.outcome {
                    SessionOutcome::Complete | SessionOutcome::NoUpdateAvailable => {
                        slot.completed_at = Some(end);
                        completion_times.push(end);
                        tracer.emit(|| Event::DeviceComplete {
                            device,
                            outcome: "complete",
                        });
                    }
                    _ => {
                        if slot.poll_attempts < config.max_poll_attempts {
                            heap.push(Reverse((end + config.retry_poll_delay_micros, t)));
                        } else {
                            slot.gave_up = true;
                            tracer.emit(|| Event::DeviceComplete {
                                device,
                                outcome: "gave_up",
                            });
                        }
                    }
                }
            }
        }
    }

    // --- Post-hoc aggregates (order-independent by construction) ----------
    let completed = slots.iter().filter(|s| s.completed_at.is_some()).count() as u32;
    let gave_up = slots.iter().filter(|s| s.gave_up).count() as u32;

    // Peak concurrency: sweep the session spans. At equal timestamps ends
    // sort before starts (delta -1 < +1), so back-to-back sessions don't
    // double-count.
    let mut sweep: Vec<(u64, i32)> = Vec::with_capacity(spans.len() * 2);
    for &(start, end) in &spans {
        sweep.push((start, 1));
        sweep.push((end, -1));
    }
    sweep.sort_unstable();
    let mut in_flight = 0i64;
    let mut peak_in_flight = 0i64;
    for &(_, delta) in &sweep {
        in_flight += i64::from(delta);
        peak_in_flight = peak_in_flight.max(in_flight);
    }

    let adoption =
        if let Some(full_buckets) = makespan_micros.checked_div(config.adoption_bucket_micros) {
            completion_times.sort_unstable();
            let buckets = full_buckets + 1;
            let mut histogram = vec![0u32; buckets as usize];
            for &at in &completion_times {
                histogram[(at / config.adoption_bucket_micros) as usize] += 1;
            }
            // Cumulative adoption curve.
            for i in 1..histogram.len() {
                histogram[i] += histogram[i - 1];
            }
            histogram
        } else {
            Vec::new()
        };

    EventFleetReport {
        completed,
        gave_up,
        total_wire_bytes,
        events,
        makespan_micros,
        peak_in_flight: peak_in_flight.max(0) as u32,
        adoption,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scale_config() -> EventFleetConfig {
        EventFleetConfig {
            devices: 200,
            firmware_size: 1_000,
            differential: false,
            loss_rate: 0.1,
            poll_window_micros: 200_000,
            verify_signatures: false,
            device_bound_manifests: false,
            adoption_bucket_micros: 1_000_000,
            seed: 0xE001,
            ..EventFleetConfig::default()
        }
    }

    #[test]
    fn report_ignores_tie_break_order_and_repeats_exactly() {
        let base = small_scale_config();
        let forward = run_event_rollout(&base);
        let again = run_event_rollout(&base);
        assert_eq!(forward, again, "same config must repeat exactly");
        let reversed = run_event_rollout(&EventFleetConfig {
            reverse_tie_break: true,
            ..base
        });
        assert_eq!(
            forward, reversed,
            "tie-break direction must not affect the report"
        );
        assert_eq!(forward.completed, 200);
        assert_eq!(forward.gave_up, 0);
    }

    #[test]
    fn loss_costs_wire_bytes_and_time_but_not_completions() {
        let reliable = run_event_rollout(&EventFleetConfig {
            loss_rate: 0.0,
            ..small_scale_config()
        });
        let lossy = run_event_rollout(&EventFleetConfig {
            loss_rate: 0.2,
            ..small_scale_config()
        });
        assert_eq!(reliable.completed, 200);
        assert_eq!(lossy.completed, 200, "retries must absorb 20 % loss");
        assert!(lossy.total_wire_bytes > reliable.total_wire_bytes);
        assert!(lossy.makespan_micros > reliable.makespan_micros);
        assert!(lossy.events > reliable.events, "losses add events");
    }

    #[test]
    fn certain_loss_exhausts_polls_and_gives_up() {
        let report = run_event_rollout(&EventFleetConfig {
            devices: 5,
            loss_rate: 1.0,
            max_poll_attempts: 3,
            ..small_scale_config()
        });
        assert_eq!(report.completed, 0);
        assert_eq!(report.gave_up, 5);
    }

    #[test]
    fn fidelity_mode_serves_device_bound_manifests() {
        // Full protocol: per-device signed manifests, both signatures
        // checked, differential payloads patched against v1.
        let full = run_event_rollout(&EventFleetConfig {
            devices: 12,
            firmware_size: 6_000,
            differential: false,
            loss_rate: 0.05,
            poll_window_micros: 50_000,
            verify_signatures: true,
            device_bound_manifests: true,
            seed: 0xE002,
            ..EventFleetConfig::default()
        });
        assert_eq!(full.completed, 12);
        assert_eq!(full.gave_up, 0);
        let diff = run_event_rollout(&EventFleetConfig {
            devices: 12,
            firmware_size: 6_000,
            differential: true,
            loss_rate: 0.05,
            poll_window_micros: 50_000,
            verify_signatures: true,
            device_bound_manifests: true,
            seed: 0xE002,
            ..EventFleetConfig::default()
        });
        assert_eq!(diff.completed, 12);
        assert!(
            diff.total_wire_bytes * 2 < full.total_wire_bytes,
            "differential {} vs full {}",
            diff.total_wire_bytes,
            full.total_wire_bytes
        );
    }

    #[test]
    fn ten_thousand_sessions_interleave_concurrently() {
        // The acceptance bar: ≥ 10k sessions in flight at once, and the
        // report deterministic regardless of tie-breaking.
        let base = EventFleetConfig {
            devices: 10_000,
            firmware_size: 600,
            differential: false,
            loss_rate: 0.0,
            poll_window_micros: 100_000,
            verify_signatures: false,
            device_bound_manifests: false,
            seed: 0xE003,
            ..EventFleetConfig::default()
        };
        let report = run_event_rollout(&base);
        assert_eq!(report.completed, 10_000);
        assert!(
            report.peak_in_flight >= 10_000,
            "peak in flight {}",
            report.peak_in_flight
        );
        let reversed = run_event_rollout(&EventFleetConfig {
            reverse_tie_break: true,
            ..base
        });
        assert_eq!(report, reversed);
    }

    #[test]
    fn adoption_curve_is_cumulative_and_converges() {
        let report = run_event_rollout(&small_scale_config());
        assert!(!report.adoption.is_empty());
        for pair in report.adoption.windows(2) {
            assert!(pair[1] >= pair[0], "adoption regressed");
        }
        assert_eq!(*report.adoption.last().unwrap(), report.completed);
    }
}
