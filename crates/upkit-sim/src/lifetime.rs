//! Device-lifetime simulation: flash wear across many sequential updates.
//!
//! NOR flash endures ~10k–100k erase cycles per sector, so an update
//! system's erase pattern bounds the device's updatable lifetime. This
//! experiment (an extension beyond the paper's figures, grounded in its
//! Fig. 6 slot configurations) applies `n` consecutive updates and tracks
//! per-sector wear:
//!
//! * **Static mode** erases the staging slot on every reception *and*
//!   erases both slots again during the boot-time swap — every update
//!   costs the staging slot two erase cycles and the bootable slot one.
//! * **A/B mode** erases only the (alternating) target slot, once — each
//!   physical sector is erased every *other* update.
//!
//! The expected endurance advantage of A/B is therefore ~4×, which
//! [`run_lifetime`] measures directly.

use std::sync::Arc;

use upkit_core::agent::{AgentConfig, AgentPhase, UpdateAgent, UpdatePlan};
use upkit_core::bootloader::{BootConfig, BootMode, Bootloader};
use upkit_core::image::FIRMWARE_OFFSET;
use upkit_core::keys::TrustAnchors;
use upkit_crypto::backend::TinyCryptBackend;
use upkit_crypto::ecdsa::SigningKey;
use upkit_flash::{configuration_a, configuration_b, standard, FlashGeometry, SimFlash, SlotId};
use upkit_manifest::Version;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::firmware::FirmwareGenerator;
use crate::scenario::{APP_ID, DEVICE_ID, LINK_OFFSET};

/// Slot strategy under test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LifetimeMode {
    /// Two bootable slots, alternating targets.
    AB,
    /// Bootable + staging with swap at every boot.
    StaticSwap,
}

/// Wear outcome of a lifetime run.
#[derive(Clone, Copy, Debug)]
pub struct LifetimeReport {
    /// Updates successfully applied.
    pub updates_applied: u32,
    /// Highest per-sector erase count observed.
    pub max_sector_wear: u32,
    /// Total sector erasures.
    pub total_erases: u64,
}

/// Applies `updates` sequential updates and reports flash wear.
///
/// # Panics
///
/// Panics if any update in the chain fails — wear numbers from a partial
/// run would be meaningless.
#[must_use]
pub fn run_lifetime(mode: LifetimeMode, updates: u32, seed: u64) -> LifetimeReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let vendor = upkit_core::generation::VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = upkit_core::generation::UpdateServer::new(SigningKey::generate(&mut rng));
    let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());
    let backend = Arc::new(TinyCryptBackend);

    let slot_size = 4096 * 4;
    let geometry = FlashGeometry {
        size: 4096 * 16,
        sector_size: 4096,
        read_micros_per_byte: 0,
        write_micros_per_byte: 0,
        erase_micros_per_sector: 0,
    };
    let mut layout = match mode {
        LifetimeMode::AB => configuration_a(Box::new(SimFlash::new(geometry)), slot_size),
        LifetimeMode::StaticSwap => {
            configuration_b(Box::new(SimFlash::new(geometry)), None, slot_size)
        }
    }
    .expect("valid layout");

    let generator = FirmwareGenerator::new(seed ^ 0x11FE);
    let mut current_fw = generator.base(6_000);
    install(
        &mut layout,
        &vendor,
        &server,
        &current_fw,
        1,
        standard::SLOT_A,
    );

    let mut agent = UpdateAgent::new(
        backend.clone(),
        anchors,
        AgentConfig {
            device_id: DEVICE_ID,
            app_id: APP_ID,
            supports_differential: false,
            content_key: None,
        },
    );
    let boot_mode = match mode {
        LifetimeMode::AB => BootMode::AB {
            slots: vec![standard::SLOT_A, standard::SLOT_B],
        },
        LifetimeMode::StaticSwap => BootMode::Static {
            bootable: standard::SLOT_A,
            staging: standard::SLOT_B,
            swap: true,
        },
    };
    let bootloader = Bootloader::new(
        backend,
        anchors,
        BootConfig {
            device_id: DEVICE_ID,
            app_id: APP_ID,
            allowed_link_offsets: vec![LINK_OFFSET],
            max_firmware_size: slot_size - FIRMWARE_OFFSET,
            mode: boot_mode,
            recovery_slot: None,
        },
    );

    let mut running_slot = standard::SLOT_A;
    let mut applied = 0u32;
    for version in 2..=updates + 1 {
        let version = version as u16;
        let new_fw = generator.app_change(&current_fw, 200 + usize::from(version % 7));
        server.publish(vendor.release(new_fw.clone(), Version(version), LINK_OFFSET, APP_ID));

        let target: SlotId = match mode {
            LifetimeMode::AB => {
                if running_slot == standard::SLOT_A {
                    standard::SLOT_B
                } else {
                    standard::SLOT_A
                }
            }
            LifetimeMode::StaticSwap => standard::SLOT_B,
        };
        let plan = UpdatePlan {
            target_slot: target,
            current_slot: running_slot,
            installed_version: Version(version - 1),
            installed_size: current_fw.len() as u32,
            allowed_link_offsets: vec![LINK_OFFSET],
            max_firmware_size: slot_size - FIRMWARE_OFFSET,
        };
        let token = agent
            .request_device_token(&mut layout, plan, u32::from(version).wrapping_mul(97) | 1)
            .expect("agent idle");
        let prepared = server.prepare_update(&token).expect("newer release");
        let mut phase = AgentPhase::NeedMore;
        for chunk in prepared.image.to_bytes().chunks(244) {
            phase = agent.push_data(&mut layout, chunk).expect("valid update");
        }
        assert_eq!(phase, AgentPhase::Complete, "update to v{version}");
        agent.reset(&mut layout).expect("reset");

        let outcome = bootloader.boot(&mut layout).expect("bootable");
        assert_eq!(outcome.version, Version(version));
        running_slot = outcome.booted_slot;
        current_fw = new_fw;
        applied += 1;
    }

    LifetimeReport {
        updates_applied: applied,
        max_sector_wear: layout.max_sector_wear(),
        total_erases: layout.total_stats().sectors_erased,
    }
}

fn install(
    layout: &mut upkit_flash::MemoryLayout,
    vendor: &upkit_core::generation::VendorServer,
    server: &upkit_core::generation::UpdateServer,
    firmware: &[u8],
    version: u16,
    slot: SlotId,
) {
    use upkit_crypto::sha256::sha256;
    use upkit_manifest::{Manifest, SignedManifest};
    let manifest = Manifest {
        device_id: DEVICE_ID,
        nonce: 0,
        old_version: Version(0),
        version: Version(version),
        size: firmware.len() as u32,
        payload_size: firmware.len() as u32,
        digest: sha256(firmware),
        link_offset: LINK_OFFSET,
        app_id: APP_ID,
    };
    let signed = SignedManifest {
        manifest,
        vendor_signature: vendor.sign_manifest_core(&manifest),
        server_signature: server.sign_manifest(&manifest),
    };
    layout.erase_slot(slot).expect("fresh flash");
    upkit_core::image::write_manifest(layout, slot, &signed).expect("fresh flash");
    layout
        .write_slot(slot, FIRMWARE_OFFSET, firmware)
        .expect("fits");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_survive_a_long_update_chain() {
        for mode in [LifetimeMode::AB, LifetimeMode::StaticSwap] {
            let report = run_lifetime(mode, 20, 500);
            assert_eq!(report.updates_applied, 20, "{mode:?}");
        }
    }

    #[test]
    fn ab_mode_wears_flash_far_less_than_static() {
        let updates = 20;
        let ab = run_lifetime(LifetimeMode::AB, updates, 501);
        let static_swap = run_lifetime(LifetimeMode::StaticSwap, updates, 501);
        // A/B: each slot erased every other update → max wear ≈ n/2 (+1
        // for provisioning). Static: staging erased at reception AND at
        // the swap → max wear ≈ 2n.
        assert!(
            static_swap.max_sector_wear >= 3 * ab.max_sector_wear,
            "static {} vs A/B {}",
            static_swap.max_sector_wear,
            ab.max_sector_wear
        );
        assert!(static_swap.total_erases > 2 * ab.total_erases);
    }

    #[test]
    fn ab_wear_tracks_half_the_update_count() {
        let updates = 30;
        let report = run_lifetime(LifetimeMode::AB, updates, 502);
        let expected = updates / 2;
        assert!(
            (report.max_sector_wear as i64 - i64::from(expected)).unsigned_abs() <= 2,
            "max wear {} vs expected ~{expected}",
            report.max_sector_wear
        );
    }
}
