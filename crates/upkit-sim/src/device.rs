//! A complete simulated device: flash + agent + bootloader + identity.
//!
//! [`SimDevice`] bundles the pieces every scenario wires together by hand,
//! exposing the lifecycle a deployed UpKit device actually runs: poll the
//! update server, receive/verify/store, reboot. Fleet-scale experiments
//! ([`crate::fleet`]) are built on it.

use std::sync::Arc;

use upkit_core::agent::{AgentConfig, AgentError, UpdateAgent, UpdatePlan};
use upkit_core::bootloader::{BootConfig, BootMode, Bootloader};
use upkit_core::generation::{UpdateServer, VendorServer};
use upkit_core::image::FIRMWARE_OFFSET;
use upkit_core::keys::TrustAnchors;
use upkit_crypto::backend::TinyCryptBackend;
use upkit_flash::{configuration_a, standard, FlashGeometry, MemoryLayout, SimFlash, SlotId};
use upkit_manifest::Version;
use upkit_net::{
    BorderRouter, LinkProfile, LossyLink, PullEndpoints, PullSession, RetryPolicy, SessionOutcome,
    TransferAccounting, Transport,
};

/// What one poll of the update server achieved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PollOutcome {
    /// Nothing newer on the server.
    AlreadyCurrent,
    /// An update was received, verified, and booted.
    Updated {
        /// The version now running.
        to: Version,
        /// Wire bytes received.
        wire_bytes: u64,
    },
    /// The update was rejected (attack or corruption).
    Rejected,
}

/// A self-contained A/B device.
pub struct SimDevice {
    /// The device's unique identifier.
    pub device_id: u32,
    layout: MemoryLayout,
    agent: UpdateAgent,
    bootloader: Bootloader,
    running_slot: SlotId,
    installed_version: Version,
    installed_size: u32,
    slot_size: u32,
    nonce_counter: u32,
}

impl core::fmt::Debug for SimDevice {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SimDevice")
            .field("device_id", &self.device_id)
            .field("installed_version", &self.installed_version)
            .finish_non_exhaustive()
    }
}

/// Shared constants for devices provisioned by [`SimDevice::provision`].
pub const APP_ID: u32 = 0xF1;
/// Link offset used by provisioned devices.
pub const LINK_OFFSET: u32 = 0;

impl SimDevice {
    /// Factory-provisions a device running `firmware` as version 1, signed
    /// by the given servers and trusting their keys.
    ///
    /// # Panics
    ///
    /// Panics if the firmware does not fit the slot layout — a
    /// provisioning-time configuration error.
    #[must_use]
    pub fn provision(
        device_id: u32,
        firmware: &[u8],
        vendor: &VendorServer,
        server: &UpdateServer,
    ) -> Self {
        Self::provision_with_options(device_id, firmware, vendor, server, true)
    }

    /// [`SimDevice::provision`] with control over differential support
    /// (non-supporting devices advertise version 0 in their tokens and
    /// always receive full images).
    #[must_use]
    pub fn provision_with_options(
        device_id: u32,
        firmware: &[u8],
        vendor: &VendorServer,
        server: &UpdateServer,
        supports_differential: bool,
    ) -> Self {
        let slot_size = {
            let needed = firmware.len() as u32 + FIRMWARE_OFFSET;
            needed.div_ceil(4096) * 4096 + 4096 * 4
        };
        let mut layout = configuration_a(
            Box::new(SimFlash::new(FlashGeometry {
                size: (slot_size * 2).next_power_of_two().max(64 * 1024),
                sector_size: 4096,
                read_micros_per_byte: 0,
                write_micros_per_byte: 0,
                erase_micros_per_sector: 0,
            })),
            slot_size,
        )
        .expect("valid provisioning layout");
        let anchors = TrustAnchors::inline(&vendor.verifying_key(), &server.verifying_key());
        let backend = Arc::new(TinyCryptBackend);

        // Install the factory image.
        let manifest = upkit_manifest::Manifest {
            device_id,
            nonce: 0,
            old_version: Version(0),
            version: Version(1),
            size: firmware.len() as u32,
            payload_size: firmware.len() as u32,
            digest: upkit_crypto::sha256::sha256(firmware),
            link_offset: LINK_OFFSET,
            app_id: APP_ID,
        };
        let signed = upkit_manifest::SignedManifest {
            manifest,
            vendor_signature: vendor.sign_manifest_core(&manifest),
            server_signature: server.sign_manifest(&manifest),
        };
        layout.erase_slot(standard::SLOT_A).expect("fresh flash");
        upkit_core::image::write_manifest(&mut layout, standard::SLOT_A, &signed)
            .expect("fresh flash");
        layout
            .write_slot(standard::SLOT_A, FIRMWARE_OFFSET, firmware)
            .expect("slot sized for firmware");

        let agent = UpdateAgent::new(
            backend.clone(),
            anchors,
            AgentConfig {
                device_id,
                app_id: APP_ID,
                supports_differential,
                content_key: None,
            },
        );
        let bootloader = Bootloader::new(
            backend,
            anchors,
            BootConfig {
                device_id,
                app_id: APP_ID,
                allowed_link_offsets: vec![LINK_OFFSET],
                max_firmware_size: slot_size - FIRMWARE_OFFSET,
                mode: BootMode::AB {
                    slots: vec![standard::SLOT_A, standard::SLOT_B],
                },
                recovery_slot: None,
            },
        );
        Self {
            device_id,
            layout,
            agent,
            bootloader,
            running_slot: standard::SLOT_A,
            installed_version: Version(1),
            installed_size: firmware.len() as u32,
            slot_size,
            nonce_counter: device_id.wrapping_mul(2_654_435_761),
        }
    }

    /// Version currently running.
    #[must_use]
    pub fn installed_version(&self) -> Version {
        self.installed_version
    }

    /// Polls the server once: request a token, receive whatever it serves,
    /// verify, store, and reboot if an update landed.
    ///
    /// Runs a reliable pull session to completion — the same resumable
    /// machinery the event-driven fleet scheduler steps one event at a
    /// time.
    pub fn poll(&mut self, server: &UpdateServer) -> Result<PollOutcome, AgentError> {
        self.nonce_counter = self.nonce_counter.wrapping_add(0x9E37_79B9) | 1;
        let target = if self.running_slot == standard::SLOT_A {
            standard::SLOT_B
        } else {
            standard::SLOT_A
        };
        let plan = UpdatePlan {
            target_slot: target,
            current_slot: self.running_slot,
            installed_version: self.installed_version,
            installed_size: self.installed_size,
            allowed_link_offsets: vec![LINK_OFFSET],
            max_firmware_size: self.slot_size - FIRMWARE_OFFSET,
        };
        let link = LinkProfile::ieee802154_6lowpan();
        let report = {
            let router = BorderRouter::new();
            let mut session = PullSession::new(
                LossyLink::reliable(link),
                RetryPolicy::for_link(&link),
                u64::from(self.device_id),
            );
            let mut endpoints = PullEndpoints::new(
                server,
                &router,
                &mut self.agent,
                &mut self.layout,
                plan,
                self.nonce_counter,
            );
            session.run_to_completion(&mut endpoints)
        };
        match report.outcome {
            SessionOutcome::NoUpdateAvailable => {
                self.agent.reset(&mut self.layout)?;
                Ok(PollOutcome::AlreadyCurrent)
            }
            SessionOutcome::RejectedAtManifest(e)
                if report.accounting == TransferAccounting::default() =>
            {
                // The agent refused to even issue a token (no radio
                // traffic at all): surface the error, as a direct
                // `request_device_token` call would.
                Err(e)
            }
            SessionOutcome::Complete => {
                self.agent.reset(&mut self.layout)?;

                // Reboot into the bootloader.
                let outcome = self
                    .bootloader
                    .boot(&mut self.layout)
                    .expect("a verified update never bricks the device");
                self.running_slot = outcome.booted_slot;
                self.installed_version = outcome.version;
                if let Ok(Some(signed)) =
                    upkit_core::image::read_manifest(&self.layout, outcome.booted_slot)
                {
                    self.installed_size = signed.manifest.size;
                }
                Ok(PollOutcome::Updated {
                    to: outcome.version,
                    // Reliable link: exactly the stream length.
                    wire_bytes: report.accounting.bytes_to_device,
                })
            }
            _ => {
                self.agent.reset(&mut self.layout)?;
                Ok(PollOutcome::Rejected)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use upkit_crypto::ecdsa::SigningKey;

    fn servers(seed: u64) -> (VendorServer, UpdateServer) {
        let mut rng = StdRng::seed_from_u64(seed);
        (
            VendorServer::new(SigningKey::generate(&mut rng)),
            UpdateServer::new(SigningKey::generate(&mut rng)),
        )
    }

    #[test]
    fn device_updates_itself_across_versions() {
        let (vendor, mut server) = servers(600);
        let generator = crate::FirmwareGenerator::new(600);
        let v1 = generator.base(8_000);
        let mut device = SimDevice::provision(0xD01, &v1, &vendor, &server);
        server.publish(vendor.release(v1.clone(), Version(1), LINK_OFFSET, APP_ID));

        assert_eq!(device.poll(&server).unwrap(), PollOutcome::AlreadyCurrent);

        let v2 = generator.app_change(&v1, 300);
        server.publish(vendor.release(v2.clone(), Version(2), LINK_OFFSET, APP_ID));
        match device.poll(&server).unwrap() {
            PollOutcome::Updated { to, wire_bytes } => {
                assert_eq!(to, Version(2));
                // Differential: far fewer wire bytes than the image.
                assert!(wire_bytes < v2.len() as u64 / 2, "{wire_bytes}");
            }
            other => panic!("expected update, got {other:?}"),
        }
        assert_eq!(device.installed_version(), Version(2));

        // Polling again is a no-op.
        assert_eq!(device.poll(&server).unwrap(), PollOutcome::AlreadyCurrent);
    }

    #[test]
    fn devices_are_isolated() {
        let (vendor, mut server) = servers(601);
        let generator = crate::FirmwareGenerator::new(601);
        let v1 = generator.base(5_000);
        server.publish(vendor.release(v1.clone(), Version(1), LINK_OFFSET, APP_ID));
        let v2 = generator.app_change(&v1, 100);
        server.publish(vendor.release(v2, Version(2), LINK_OFFSET, APP_ID));

        let mut a = SimDevice::provision(0xA, &v1, &vendor, &server);
        let mut b = SimDevice::provision(0xB, &v1, &vendor, &server);
        assert!(matches!(
            a.poll(&server).unwrap(),
            PollOutcome::Updated { .. }
        ));
        // Device B is unaffected by A's update until it polls itself.
        assert_eq!(b.installed_version(), Version(1));
        assert!(matches!(
            b.poll(&server).unwrap(),
            PollOutcome::Updated { .. }
        ));
    }
}
