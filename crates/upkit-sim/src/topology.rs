//! Multi-hop dissemination: caching gateway proxies, lossy mesh
//! topologies, duty-cycled devices, and concurrent campaigns.
//!
//! The event scheduler ([`crate::events`]) runs every device's
//! [`PullSession`](upkit_net::PullSession) straight against the update
//! server: one upstream transfer per device. Real deployments put a
//! gateway between the constrained mesh and the Internet, and the whole
//! point of a gateway is that it only has to fetch each update **once**.
//! This module models that:
//!
//! * **Topology.** A two-tier tree/mesh: each gateway serves
//!   `devices_per_gateway` devices over an 802.15.4 access radio relayed
//!   across `mesh_hops` store-and-forward hops (latency scales with the
//!   hop count, and per-hop Bernoulli loss compounds to
//!   `1 - (1-p)^hops`). Each gateway reaches the update server over a
//!   `backhaul_hops`-hop WiFi/Internet backhaul.
//! * **Caching.** Every gateway is a [`CachingProxy`]: a bounded,
//!   LRU-evicted block cache keyed by `(origin digest, block index)`. A
//!   cache hit serves downstream without touching the backhaul; a miss
//!   single-flights the upstream fetch so overlapping downstream sessions
//!   share one transfer; `cache_blocks = 0` disables caching entirely and
//!   degenerates to per-device unicast (the baseline the benches compare
//!   against).
//! * **Campaigns.** `campaigns` independent v1→v2 rollouts run
//!   concurrently; devices are assigned round-robin. The campaigns'
//!   origins are distinct, so they compete for both cache capacity and
//!   the shared backhaul (the proxy serializes upstream fetches on one
//!   `busy_until` horizon).
//! * **Duty cycling.** An optional [`DutyCycle`] defers device wake
//!   events that land in a sleep window; a device that naps mid-session
//!   resumes exactly where it left off (the session state machine is
//!   resumable by construction) and only its wall-clock completion time
//!   moves.
//!
//! **Determinism guarantee.** The final [`DisseminationReport`] — and,
//! under a tracing collector, the counter totals and the trace byte
//! stream — is a pure function of the [`TopologyConfig`], independent of
//! worker thread count. Each gateway is one shard with its own event
//! heap, proxy, and tracer; shards share no mutable state, workers pick
//! shards off an atomic cursor, and the per-shard traces are merged in
//! gateway-index order after the join. The proof test runs at 1, 2, and
//! 8 threads and compares reports, counters, and trace bytes for
//! equality.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::SeedableRng;
use upkit_core::agent::{AgentError, AgentPhase};
use upkit_core::generation::{UpdateServer, VendorServer};
use upkit_crypto::ecdsa::{SigningKey, VerifyingKey};
use upkit_manifest::{DeviceToken, Version, SIGNED_MANIFEST_LEN};
use upkit_net::lossy::splitmix64;
use upkit_net::{
    CachedOrigin, CachingProxy, LinkProfile, LossyLink, PullSession, RetryPolicy, SessionEndpoints,
    SessionOutcome, SessionStream, Step, StreamResolution, Transport,
};
use upkit_trace::{Counters, CountersSnapshot, Event, MemorySink, TraceRecord, Tracer};

use crate::device::{APP_ID, LINK_OFFSET};
use crate::events::{LiteState, LiteVerifyCtx};
use crate::firmware::FirmwareGenerator;

/// A device sleep schedule: wake events that land inside a sleep window
/// are deferred to the next awake instant. Sessions are resumable, so a
/// device that sleeps mid-transfer picks up exactly where it left off.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DutyCycle {
    /// Awake for `awake_micros`, asleep for `asleep_micros`, repeating.
    /// Each device gets a deterministic per-device phase offset so the
    /// fleet doesn't wake in lockstep. `awake_micros = 0` is treated as
    /// always-awake (a device that never wakes could never converge).
    Periodic {
        /// Length of the awake window in virtual microseconds.
        awake_micros: u64,
        /// Length of the asleep window in virtual microseconds.
        asleep_micros: u64,
    },
    /// One single nap: asleep for `duration_micros` starting at
    /// `at_micros`. The duty-cycle test suite slides this across every
    /// event boundary of a reference run to prove any mid-session sleep
    /// point converges.
    Nap {
        /// Virtual time the nap starts.
        at_micros: u64,
        /// Nap length in virtual microseconds.
        duration_micros: u64,
    },
}

impl DutyCycle {
    /// The earliest awake instant at or after `t` for a device with
    /// phase offset `phase` (periodic schedules only; naps ignore it).
    #[must_use]
    pub fn defer(&self, phase: u64, t: u64) -> u64 {
        match *self {
            DutyCycle::Periodic {
                awake_micros,
                asleep_micros,
            } => {
                let period = awake_micros.saturating_add(asleep_micros);
                if awake_micros == 0 || asleep_micros == 0 || period == 0 {
                    return t;
                }
                let pos = (t.wrapping_add(phase)) % period;
                if pos < awake_micros {
                    t
                } else {
                    t + (period - pos)
                }
            }
            DutyCycle::Nap {
                at_micros,
                duration_micros,
            } => {
                let end = at_micros.saturating_add(duration_micros);
                if t >= at_micros && t < end {
                    end
                } else {
                    t
                }
            }
        }
    }
}

/// Parameters of a multi-hop dissemination run.
#[derive(Clone, Copy, Debug)]
pub struct TopologyConfig {
    /// Number of gateways (each is one deterministic shard).
    pub gateways: u32,
    /// Devices behind each gateway.
    pub devices_per_gateway: u32,
    /// Store-and-forward hops between a device and its gateway
    /// (1 = direct tree leaf; more = mesh depth).
    pub mesh_hops: u32,
    /// Hops on each gateway's backhaul to the update server.
    pub backhaul_hops: u32,
    /// Per-hop Bernoulli loss probability on the access mesh; compounds
    /// across `mesh_hops`.
    pub loss_rate: f64,
    /// Concurrent independent v1→v2 campaigns (devices assigned
    /// round-robin). Must be at least 1.
    pub campaigns: u32,
    /// Firmware size in bytes (per campaign).
    pub firmware_size: usize,
    /// Whether devices advertise differential support.
    pub differential: bool,
    /// Gateway cache capacity in blocks; 0 disables caching (per-device
    /// unicast baseline).
    pub cache_blocks: usize,
    /// Cache block size in bytes.
    pub block_size: usize,
    /// Optional device sleep schedule.
    pub duty: Option<DutyCycle>,
    /// Retransmission policy for every downstream session.
    pub retry: RetryPolicy,
    /// Devices start their first poll uniformly inside this window.
    pub poll_window_micros: u64,
    /// Delay before a failed session's next poll.
    pub retry_poll_delay_micros: u64,
    /// Total poll attempts before a device gives up.
    pub max_poll_attempts: u32,
    /// Whether devices verify manifest signatures.
    pub verify_signatures: bool,
    /// Worker threads (shards are work-stolen; the report is identical
    /// at any thread count).
    pub threads: usize,
    /// Seed for world generation, poll spread, loss, and duty phases.
    pub seed: u64,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        Self {
            gateways: 1,
            devices_per_gateway: 8,
            mesh_hops: 1,
            backhaul_hops: 1,
            loss_rate: 0.0,
            campaigns: 1,
            firmware_size: 4_000,
            differential: false,
            cache_blocks: 64,
            block_size: 512,
            duty: None,
            retry: RetryPolicy::for_link(&LinkProfile::ieee802154_6lowpan()),
            poll_window_micros: 100_000,
            retry_poll_delay_micros: 5_000_000,
            max_poll_attempts: 8,
            verify_signatures: true,
            threads: 1,
            seed: 0xD15E,
        }
    }
}

/// Per-gateway shard results.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Gateway index.
    pub gateway: u32,
    /// Devices that finished their update behind this gateway.
    pub completed: u32,
    /// Devices that exhausted their poll attempts.
    pub gave_up: u32,
    /// Completed installs across this gateway's devices (one per device
    /// unless something re-installed — the duty tests pin this).
    pub installs: u64,
    /// Installed images byte-identical to the direct single-hop fetch.
    pub image_matches: u64,
    /// Installed images differing from the direct single-hop fetch
    /// (must stay 0: integrity holds through any proxy).
    pub image_mismatches: u64,
    /// Payload bytes moved on the access mesh (both directions).
    pub downstream_wire_bytes: u64,
    /// Bytes this gateway pulled over its backhaul.
    pub upstream_bytes: u64,
    /// Upstream block fetches this gateway issued.
    pub upstream_fetches: u64,
    /// Blocks served straight from the gateway cache.
    pub cache_hits: u64,
    /// Blocks fetched upstream before serving.
    pub cache_misses: u64,
    /// Blocks that joined an in-flight upstream fetch.
    pub single_flight_joins: u64,
    /// Cache blocks evicted under capacity pressure.
    pub evictions: u64,
    /// Sleep deferrals applied to this gateway's devices.
    pub slept: u64,
    /// Virtual time the last session behind this gateway ended.
    pub makespan_micros: u64,
}

/// Aggregate outcome of a dissemination run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DisseminationReport {
    /// Devices that finished their update.
    pub completed: u32,
    /// Devices that exhausted their poll attempts.
    pub gave_up: u32,
    /// Total completed installs (no device installs twice per version).
    pub installs: u64,
    /// Installed images byte-identical to the direct single-hop fetch.
    pub image_matches: u64,
    /// Installed images differing from it (must stay 0).
    pub image_mismatches: u64,
    /// Total link events stepped.
    pub events: u64,
    /// Total bytes pulled over all gateway backhauls — the headline
    /// number caching exists to shrink.
    pub upstream_bytes: u64,
    /// Total upstream block fetches.
    pub upstream_fetches: u64,
    /// Total cache hits across gateways.
    pub cache_hits: u64,
    /// Total cache misses across gateways.
    pub cache_misses: u64,
    /// Total single-flight joins across gateways.
    pub single_flight_joins: u64,
    /// Total cache evictions across gateways.
    pub evictions: u64,
    /// Total payload bytes on the access meshes (both directions).
    pub downstream_wire_bytes: u64,
    /// Total sleep deferrals.
    pub slept: u64,
    /// Virtual time the last session anywhere ended.
    pub makespan_micros: u64,
    /// Per-gateway breakdown, in gateway order.
    pub per_gateway: Vec<GatewayStats>,
}

/// One campaign's shared, read-only world: the origin stream every
/// gateway caches, the keys devices verify against, and the reference
/// image a direct (proxy-free, loss-free, single-hop) fetch installs.
struct Campaign {
    origin: CachedOrigin,
    vendor_key: VerifyingKey,
    server_key: VerifyingKey,
    base_image: Vec<u8>,
    latest: Version,
    /// What a direct single-hop fetch of this campaign installs —
    /// obtained by actually running one, not assumed.
    expected_image: Vec<u8>,
}

/// Serves a fixed stream directly (no proxy, no loss): the single-hop
/// reference fetch the dissemination results are compared against.
struct DirectEndpoints<'a> {
    campaign: &'a Campaign,
    state: &'a mut LiteState,
    verify_signatures: bool,
}

impl SessionEndpoints for DirectEndpoints<'_> {
    fn request_token(&mut self) -> Result<DeviceToken, AgentError> {
        Ok(self.state.next_token())
    }

    fn resolve_stream(&mut self, _token: &DeviceToken) -> StreamResolution {
        StreamResolution::Stream(self.campaign.origin.direct_stream())
    }

    fn deliver(&mut self, chunk: &[u8]) -> Result<AgentPhase, AgentError> {
        let ctx = LiteVerifyCtx {
            vendor_key: &self.campaign.vendor_key,
            server_key: &self.campaign.server_key,
            base_image: &self.campaign.base_image,
            verify_signatures: self.verify_signatures,
            device_bound: false,
        };
        self.state.deliver_chunk(&ctx, chunk)
    }
}

/// Serves a campaign's stream through the gateway's caching proxy.
struct MeshEndpoints<'a> {
    campaign: &'a Campaign,
    proxy: &'a mut CachingProxy,
    state: &'a mut LiteState,
    verify_signatures: bool,
    now_micros: u64,
}

impl SessionEndpoints for MeshEndpoints<'_> {
    fn request_token(&mut self) -> Result<DeviceToken, AgentError> {
        Ok(self.state.next_token())
    }

    fn resolve_stream(&mut self, _token: &DeviceToken) -> StreamResolution {
        if self.state.installed >= self.campaign.latest {
            return StreamResolution::NoUpdate;
        }
        self.proxy.resolve(&self.campaign.origin, self.now_micros)
    }

    fn deliver(&mut self, chunk: &[u8]) -> Result<AgentPhase, AgentError> {
        let ctx = LiteVerifyCtx {
            vendor_key: &self.campaign.vendor_key,
            server_key: &self.campaign.server_key,
            base_image: &self.campaign.base_image,
            verify_signatures: self.verify_signatures,
            device_bound: false,
        };
        self.state.deliver_chunk(&ctx, chunk)
    }
}

/// Builds the campaigns' shared worlds: publish v1/v2, prepare the
/// canonical campaign stream, and run one direct single-hop reference
/// fetch to capture the ground-truth installed image.
fn build_campaigns(config: &TopologyConfig) -> Vec<Campaign> {
    let count = config.campaigns.max(1);
    (0..count)
        .map(|c| {
            let seed = config
                .seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(c)));
            let mut rng = StdRng::seed_from_u64(seed);
            let vendor = VendorServer::new(SigningKey::generate(&mut rng));
            let mut server = UpdateServer::new(SigningKey::generate(&mut rng));
            let generator = FirmwareGenerator::new(seed ^ 0xF00D);
            let v1 = generator.base(config.firmware_size);
            let v2 = generator.os_version_change(&v1);
            server.publish(vendor.release(v1.clone(), Version(1), LINK_OFFSET, APP_ID));
            server.publish(vendor.release(v2, Version(2), LINK_OFFSET, APP_ID));

            // One canonical stream for the whole campaign (broadcast
            // manifests: devices check signatures + digest + version, not
            // device/nonce binding).
            let token = DeviceToken {
                device_id: 0,
                nonce: 1,
                current_version: if config.differential {
                    Version(1)
                } else {
                    Version(0)
                },
            };
            let prepared = server
                .prepare_update(&token)
                .expect("v2 is published and newer");
            let stream = prepared.image.to_bytes();
            let manifest_len = SIGNED_MANIFEST_LEN.min(stream.len());
            let payload = stream[manifest_len..].to_vec();
            let mut manifest = stream;
            manifest.truncate(manifest_len);
            let origin = CachedOrigin::new(&SessionStream { manifest, payload });

            let mut campaign = Campaign {
                origin,
                vendor_key: vendor.verifying_key(),
                server_key: server.verifying_key(),
                base_image: v1,
                latest: Version(2),
                expected_image: Vec::new(),
            };
            campaign.expected_image = direct_reference_fetch(config, &campaign);
            campaign
        })
        .collect()
}

/// Runs the direct single-hop reference fetch: a lone device on a
/// loss-free access link, no proxy in the path. Returns the image it
/// installs — the byte-exact target every proxied device must match.
fn direct_reference_fetch(config: &TopologyConfig, campaign: &Campaign) -> Vec<u8> {
    let link = LinkProfile::ieee802154_6lowpan();
    let lossless = LossyLink::bernoulli(link, 0.0, config.seed);
    let mut state = LiteState::new(0x0FFF, config.differential);
    let mut session = PullSession::new(lossless, config.retry, u64::MAX);
    loop {
        let step = {
            let mut endpoints = DirectEndpoints {
                campaign,
                state: &mut state,
                verify_signatures: config.verify_signatures,
            };
            session.step(&mut endpoints)
        };
        if let Step::Done(report) = step {
            assert_eq!(
                report.outcome,
                SessionOutcome::Complete,
                "the loss-free direct reference fetch must complete"
            );
            break;
        }
    }
    state
        .last_installed
        .expect("a completed reference fetch installed an image")
}

/// Per-device scheduler slot.
struct TopoSlot {
    state: LiteState,
    campaign: usize,
    session: Option<PullSession>,
    session_started_at: u64,
    /// Sleep time accumulated inside the current session (wall-clock
    /// completion shifts by this; radio accounting does not).
    session_sleep_micros: u64,
    poll_attempts: u32,
    duty_phase: u64,
    completed_at: Option<u64>,
    gave_up: bool,
    slept: u64,
}

/// Runs one gateway's shard: its caching proxy, its devices, and its own
/// virtual-clock event heap. Pure function of `(config, campaigns,
/// gateway)` — shards share no mutable state.
fn run_gateway_shard(
    config: &TopologyConfig,
    campaigns: &[Campaign],
    gateway: u32,
    tracer: &Tracer,
) -> (GatewayStats, u64) {
    let backhaul = LinkProfile::wifi_backhaul().multi_hop(config.backhaul_hops);
    let mut proxy = CachingProxy::new(
        u64::from(gateway),
        config.block_size,
        config.cache_blocks,
        backhaul,
    );
    proxy.set_tracer(tracer.clone());

    let access = LinkProfile::ieee802154_6lowpan().multi_hop(config.mesh_hops);
    // Per-hop loss compounds across the mesh: a transfer survives only if
    // every hop delivers it.
    let mut survive = 1.0f64;
    for _ in 0..config.mesh_hops.max(1) {
        survive *= 1.0 - config.loss_rate;
    }
    let lossy = LossyLink::bernoulli(access, 1.0 - survive, config.seed);

    let dpg = config.devices_per_gateway as usize;
    let first_global = gateway as usize * dpg;
    let duty_period = match config.duty {
        Some(DutyCycle::Periodic {
            awake_micros,
            asleep_micros,
        }) => awake_micros.saturating_add(asleep_micros),
        _ => 0,
    };
    let mut slots: Vec<TopoSlot> = (0..dpg)
        .map(|i| {
            let gi = first_global + i;
            let duty_phase = if duty_period == 0 {
                0
            } else {
                splitmix64(config.seed ^ 0xD07A_0000u64.wrapping_add(gi as u64)) % duty_period
            };
            TopoSlot {
                state: LiteState::new(0x1000 + gi as u32, config.differential),
                campaign: gi % campaigns.len(),
                session: None,
                session_started_at: 0,
                session_sleep_micros: 0,
                poll_attempts: 0,
                duty_phase,
                completed_at: None,
                gave_up: false,
                slept: 0,
            }
        })
        .collect();

    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::with_capacity(dpg);
    let mut stats = GatewayStats {
        gateway,
        ..GatewayStats::default()
    };
    let mut events = 0u64;

    // Defers a wake to the device's next awake instant, charging the
    // sleep to the slot and the counters.
    let defer_wake = |slot: &mut TopoSlot, t: u64, in_session: bool, tracer: &Tracer| -> u64 {
        let Some(duty) = config.duty else { return t };
        let wake = duty.defer(slot.duty_phase, t);
        if wake > t {
            slot.slept += 1;
            if in_session {
                slot.session_sleep_micros += wake - t;
            }
            Counters::add(&tracer.counters().devices_slept, 1);
            let device = u64::from(slot.state.device_id);
            tracer.emit(|| Event::DeviceSleep {
                device,
                until_micros: wake,
            });
        }
        wake
    };

    for (i, slot) in slots.iter_mut().enumerate() {
        let gi = first_global + i;
        let spread = if config.poll_window_micros == 0 {
            0
        } else {
            splitmix64(config.seed ^ 0x57A2_7000u64.wrapping_add(gi as u64))
                % config.poll_window_micros
        };
        let wake = defer_wake(slot, spread, false, tracer);
        heap.push(Reverse((wake, i as u32)));
    }

    while let Some(Reverse((now, t))) = heap.pop() {
        let idx = t as usize;
        let slot = &mut slots[idx];
        tracer.advance_now_to(now);

        if slot.session.is_none() {
            let gi = first_global + idx;
            let stream_id = (gi as u64) << 16 | u64::from(slot.poll_attempts);
            let mut session = PullSession::new(lossy, config.retry, stream_id);
            session.set_tracer(tracer.clone());
            slot.session = Some(session);
            slot.session_started_at = now;
            slot.session_sleep_micros = 0;
            slot.poll_attempts += 1;
            slot.state.reset_transfer();
            let device = u64::from(slot.state.device_id);
            tracer.emit(|| Event::SchedulerDispatch {
                device,
                at_micros: now,
            });
        }

        let Some(session) = slot.session.as_mut() else {
            debug_assert!(false, "session just ensured above");
            continue;
        };
        let step = {
            let mut endpoints = MeshEndpoints {
                campaign: &campaigns[slot.campaign],
                proxy: &mut proxy,
                state: &mut slot.state,
                verify_signatures: config.verify_signatures,
                now_micros: now,
            };
            session.step(&mut endpoints)
        };
        match step {
            Step::Progress(event) => {
                events += 1;
                let wake = defer_wake(slot, now + event.cost_micros, true, tracer);
                heap.push(Reverse((wake, t)));
            }
            Step::Done(report) => {
                let Some(session) = slot.session.take() else {
                    debug_assert!(false, "session was stepped above");
                    continue;
                };
                let end = slot.session_started_at
                    + session.virtual_elapsed_micros()
                    + slot.session_sleep_micros;
                stats.makespan_micros = stats.makespan_micros.max(end);
                stats.downstream_wire_bytes +=
                    report.accounting.bytes_to_device + report.accounting.bytes_from_device;
                let device = u64::from(slot.state.device_id);
                match report.outcome {
                    SessionOutcome::Complete | SessionOutcome::NoUpdateAvailable => {
                        slot.completed_at = Some(end);
                        tracer.emit(|| Event::DeviceComplete {
                            device,
                            outcome: "complete",
                        });
                    }
                    _ => {
                        if slot.poll_attempts < config.max_poll_attempts {
                            let wake = defer_wake(
                                slot,
                                end + config.retry_poll_delay_micros,
                                false,
                                tracer,
                            );
                            heap.push(Reverse((wake, t)));
                        } else {
                            slot.gave_up = true;
                            tracer.emit(|| Event::DeviceComplete {
                                device,
                                outcome: "gave_up",
                            });
                        }
                    }
                }
            }
        }
    }

    for slot in &slots {
        if slot.completed_at.is_some() {
            stats.completed += 1;
        }
        if slot.gave_up {
            stats.gave_up += 1;
        }
        stats.installs += u64::from(slot.state.installs);
        stats.slept += slot.slept;
        if let Some(image) = &slot.state.last_installed {
            if image == &campaigns[slot.campaign].expected_image {
                stats.image_matches += 1;
            } else {
                stats.image_mismatches += 1;
            }
        }
    }
    let pstats = proxy.stats();
    stats.upstream_bytes = pstats.upstream_bytes;
    stats.upstream_fetches = pstats.upstream_fetches;
    stats.cache_hits = pstats.cache_hits;
    stats.cache_misses = pstats.cache_misses;
    stats.single_flight_joins = pstats.single_flight_joins;
    stats.evictions = pstats.evictions;
    (stats, events)
}

/// Runs a dissemination campaign without tracing.
#[must_use]
pub fn run_dissemination(config: &TopologyConfig) -> DisseminationReport {
    run_dissemination_traced(config, &Tracer::disabled())
}

/// Runs a dissemination campaign, streaming per-shard traces into
/// `tracer` merged in gateway-index order: byte-identical output at any
/// worker thread count.
pub fn run_dissemination_traced(config: &TopologyConfig, tracer: &Tracer) -> DisseminationReport {
    let campaigns = build_campaigns(config);
    let shard_count = config.gateways.max(1) as usize;
    let threads = config.threads.max(1).min(shard_count);
    let tracing_enabled = tracer.is_enabled();

    type ShardOut = (GatewayStats, u64, CountersSnapshot, Vec<TraceRecord>);
    let slots: Vec<Mutex<Option<ShardOut>>> = (0..shard_count).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    crossbeam::thread::scope(|scope| {
        let campaigns = &campaigns;
        let slots = &slots;
        let cursor = &cursor;
        for _ in 0..threads {
            scope.spawn(move |_| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= shard_count {
                    break;
                }
                let (shard_tracer, sink) = if tracing_enabled {
                    let sink = Arc::new(MemorySink::new());
                    (Tracer::with_sink(Box::new(Arc::clone(&sink))), Some(sink))
                } else {
                    (Tracer::disabled(), None)
                };
                let (stats, events) =
                    run_gateway_shard(config, campaigns, index as u32, &shard_tracer);
                let snapshot = shard_tracer.counters().snapshot();
                let records = sink.map(|s| s.drain()).unwrap_or_default();
                *slots[index].lock().expect("shard slot poisoned") =
                    Some((stats, events, snapshot, records));
            });
        }
    })
    .expect("dissemination workers do not panic");

    // Merge in gateway-index order: the parent trace and the report are
    // independent of which worker ran which shard.
    let mut report = DisseminationReport::default();
    for slot in &slots {
        let (stats, events, snapshot, records) = slot
            .lock()
            .expect("shard slot poisoned")
            .take()
            .expect("every shard ran");
        tracer.absorb(&snapshot, &records);
        report.completed += stats.completed;
        report.gave_up += stats.gave_up;
        report.installs += stats.installs;
        report.image_matches += stats.image_matches;
        report.image_mismatches += stats.image_mismatches;
        report.events += events;
        report.upstream_bytes += stats.upstream_bytes;
        report.upstream_fetches += stats.upstream_fetches;
        report.cache_hits += stats.cache_hits;
        report.cache_misses += stats.cache_misses;
        report.single_flight_joins += stats.single_flight_joins;
        report.evictions += stats.evictions;
        report.downstream_wire_bytes += stats.downstream_wire_bytes;
        report.slept += stats.slept;
        report.makespan_micros = report.makespan_micros.max(stats.makespan_micros);
        report.per_gateway.push(stats);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TopologyConfig {
        TopologyConfig {
            firmware_size: 1_200,
            block_size: 256,
            ..TopologyConfig::default()
        }
    }

    #[test]
    fn zero_loss_tree_converges_and_caches() {
        let config = small();
        let report = run_dissemination(&config);
        assert_eq!(report.completed, 8);
        assert_eq!(report.gave_up, 0);
        assert_eq!(report.installs, 8);
        assert_eq!(report.image_matches, 8);
        assert_eq!(report.image_mismatches, 0);
        // The cache holds the whole origin: exactly one upstream fetch
        // per distinct block, every other serve is a hit.
        let blocks = report.upstream_fetches;
        assert!(blocks > 0);
        assert_eq!(report.cache_misses, report.upstream_fetches);
        assert!(report.cache_hits + report.single_flight_joins >= 7 * blocks);
        assert_eq!(report.evictions, 0);
    }

    #[test]
    fn caching_beats_unicast_on_upstream_bytes() {
        let cached = run_dissemination(&small());
        let unicast = run_dissemination(&TopologyConfig {
            cache_blocks: 0,
            ..small()
        });
        assert_eq!(unicast.completed, 8);
        assert!(
            cached.upstream_bytes * 3 < unicast.upstream_bytes,
            "cached {} vs unicast {}",
            cached.upstream_bytes,
            unicast.upstream_bytes
        );
        // Caching changes the backhaul, not the devices: both runs move
        // the same bytes on the access mesh and install the same images.
        assert_eq!(cached.downstream_wire_bytes, unicast.downstream_wire_bytes);
        assert_eq!(unicast.image_mismatches, 0);
    }

    #[test]
    fn overlapping_campaigns_share_the_cache_and_converge() {
        let config = TopologyConfig {
            campaigns: 3,
            devices_per_gateway: 9,
            ..small()
        };
        let report = run_dissemination(&config);
        assert_eq!(report.completed, 9);
        assert_eq!(report.image_matches, 9);
        assert_eq!(report.image_mismatches, 0);
        // Three distinct origins were fetched once each.
        let single = run_dissemination(&small());
        assert_eq!(report.upstream_fetches, 3 * single.upstream_fetches);
    }

    #[test]
    fn lossy_mesh_still_installs_the_exact_image() {
        let config = TopologyConfig {
            mesh_hops: 3,
            loss_rate: 0.05,
            max_poll_attempts: 32,
            ..small()
        };
        let report = run_dissemination(&config);
        assert_eq!(report.completed, 8, "gave_up={}", report.gave_up);
        assert_eq!(report.image_matches, 8);
        assert_eq!(report.image_mismatches, 0);
    }

    #[test]
    fn duty_cycled_devices_sleep_but_still_converge() {
        let awake = TopologyConfig { ..small() };
        let dozing = TopologyConfig {
            duty: Some(DutyCycle::Periodic {
                awake_micros: 400_000,
                asleep_micros: 200_000,
            }),
            ..small()
        };
        let a = run_dissemination(&awake);
        let d = run_dissemination(&dozing);
        assert_eq!(d.completed, 8);
        assert_eq!(d.installs, 8, "sleeping must not duplicate installs");
        assert_eq!(d.image_mismatches, 0);
        assert!(d.slept > 0, "the schedule must actually defer something");
        // Sleeping costs wall-clock time, never radio bytes.
        assert_eq!(d.downstream_wire_bytes, a.downstream_wire_bytes);
        assert!(d.makespan_micros > a.makespan_micros);
    }

    #[test]
    fn report_is_identical_across_thread_counts() {
        let config = TopologyConfig {
            gateways: 4,
            devices_per_gateway: 4,
            loss_rate: 0.08,
            max_poll_attempts: 24,
            ..small()
        };
        let one = run_dissemination(&TopologyConfig {
            threads: 1,
            ..config
        });
        let two = run_dissemination(&TopologyConfig {
            threads: 2,
            ..config
        });
        let eight = run_dissemination(&TopologyConfig {
            threads: 8,
            ..config
        });
        assert_eq!(one, two);
        assert_eq!(one, eight);
    }

    #[test]
    fn bounded_cache_evicts_and_still_converges() {
        let config = TopologyConfig {
            campaigns: 2,
            devices_per_gateway: 8,
            cache_blocks: 3,
            ..small()
        };
        let report = run_dissemination(&config);
        assert_eq!(report.completed, 8);
        assert_eq!(report.image_mismatches, 0);
        assert!(report.evictions > 0, "two origins must not fit in 3 blocks");
        // Thrashing refetches: more upstream fetches than distinct blocks.
        let distinct = run_dissemination(&TopologyConfig {
            campaigns: 2,
            devices_per_gateway: 8,
            ..small()
        })
        .upstream_fetches;
        assert!(report.upstream_fetches > distinct);
    }
}
