//! Staged campaign orchestration over a sharded lite-device fleet.
//!
//! Fleet-scale update systems do not flip a release on for everyone at
//! once: they move it through **channels** (dogfood → beta → prod), open
//! each channel **fractionally** (10% → 50% → 100% of the population),
//! target cohorts by OS profile and installed version, and watch fleet
//! health while the stage is open — halting and rolling back the moment
//! boot failures, accepted forgeries, or retry storms regress. This module
//! reproduces that discipline (the Omaha/Fuchsia model) on top of the
//! sharded rollout engine in [`crate::fleet`], with the same contract:
//! **the outcome is a pure function of the configuration**, never of the
//! thread count or scheduling.
//!
//! # Determinism under parallelism
//!
//! Health decisions are global (they read the whole fleet's counters), but
//! a stop-the-world barrier per round is exactly the scaling bug this
//! engine exists to avoid. Instead, shards advance on **per-shard virtual
//! clocks with bounded skew**: the decision for round `r` — which stage is
//! open, whether the campaign halts — is a pure function of every shard's
//! published summaries for rounds `≤ r − K − 1`, where `K` is
//! [`HealthPolicy::decision_latency`]. Any shard may run ahead of another
//! by at most `K + 1` rounds, workers claim whichever shard is runnable
//! (work-stealing, no barrier), and the halt round is decided by virtual
//! time alone — scheduling cannot move it. The first `K + 1` rounds use
//! the initial stage unconditionally, modelling the real-world lag between
//! a metric regressing and the rollout system reacting.
//!
//! Per-shard, per-round trace deltas are merged after the join in
//! (round, shard-index) order exactly as in [`crate::fleet`], so reports,
//! counters, and merged traces are byte-identical at any thread count —
//! proven by `tests/campaign_determinism.rs`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use upkit_core::generation::{UpdateServer, VendorServer};
use upkit_crypto::ecdsa::SigningKey;
use upkit_manifest::Version;
use upkit_trace::{Counters, CountersSnapshot, Event, TraceRecord, Tracer};

use crate::device::{PollOutcome, APP_ID, LINK_OFFSET};
use crate::firmware::FirmwareGenerator;
use crate::fleet::{FleetConfig, FleetEnv, LiteDevice, ManifestMode, ShardCtx};

/// Release channel a device is enrolled in. Ordered by how early the
/// channel sees a release: dogfood first, prod last.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Channel {
    /// Internal fleet: first to receive every release.
    Dogfood,
    /// Opt-in early adopters.
    Beta,
    /// The general population.
    Prod,
}

/// Which part of the fleet a campaign targets, orthogonally to channels
/// and stage fractions.
#[derive(Clone, Copy, Debug)]
pub struct CohortFilter {
    /// Restrict to one OS profile (devices carry a profile in `0..3`);
    /// `None` targets every profile.
    pub os_profile: Option<u8>,
    /// Only devices running at least this version are targeted (`0` for
    /// everyone). Lets a campaign skip devices too old to patch from.
    pub min_version: Version,
}

impl Default for CohortFilter {
    fn default() -> Self {
        Self {
            os_profile: None,
            min_version: Version(0),
        }
    }
}

/// One step of the staged rollout: which channels are enrolled and how
/// much of the frontier channel is open.
#[derive(Clone, Copy, Debug)]
pub struct Stage {
    /// Channels up to and including this one participate. Channels
    /// *before* it are fully enrolled (they passed their own stages).
    pub max_channel: Channel,
    /// Fraction of the frontier channel that is open, in basis points
    /// (10_000 = 100%). Devices are assigned a stable percentile at
    /// provisioning, so fractions are cumulative: widening a stage never
    /// un-enrolls a device.
    pub fraction_bps: u32,
}

/// Fleet-health limits that halt the campaign when exceeded.
///
/// All limits are on *cumulative* fleet-wide counters since campaign
/// start, evaluated on the bounded-skew virtual clock.
#[derive(Clone, Copy, Debug)]
pub struct HealthPolicy {
    /// Maximum tolerated post-install boot failures.
    pub max_boot_failures: u64,
    /// Maximum tolerated accepted forgeries — keep at 0; any accepted
    /// forgery is a signing-path compromise, not a rollout problem.
    pub max_forgeries: u64,
    /// Maximum tolerated update retries (a retry storm means devices are
    /// re-downloading: failed boots, flaky links, or a poisoned payload).
    pub max_retries: u64,
    /// Decision latency `K` in rounds: the decision for round `r` sees
    /// counters through round `r − K − 1`. Larger values let shards run
    /// further ahead; the halt round moves with `K` but never with the
    /// thread count.
    pub decision_latency: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        Self {
            max_boot_failures: 25,
            max_forgeries: 0,
            max_retries: 100,
            decision_latency: 2,
        }
    }
}

/// Deterministic fault injection: which devices fail to boot the new
/// image (bad flash sector, incompatible peripheral revision, …).
#[derive(Clone, Copy, Debug)]
pub struct FaultModel {
    /// Basis points of the fleet whose post-install boot fails. A faulty
    /// device reverts to the old image and retries on later polls.
    pub boot_failure_bps: u32,
    /// After this many failed boots a device gives up and is held out of
    /// the campaign (it would page a human in production).
    pub max_attempts: u32,
}

impl Default for FaultModel {
    fn default() -> Self {
        Self {
            boot_failure_bps: 0,
            max_attempts: 3,
        }
    }
}

/// Parameters of a staged campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Device count, poll fraction, firmware size, seed (the `devices`
    /// and RNG contract matches [`crate::fleet::ShardedFleetConfig`]).
    pub fleet: FleetConfig,
    /// Independent shards (each with its own RNG stream).
    pub shards: u32,
    /// Worker threads; any value produces identical results.
    pub threads: usize,
    /// Channel split in basis points: `[dogfood, beta]`, the remainder is
    /// prod. Devices are assigned deterministically by device ID.
    pub channel_split_bps: [u32; 2],
    /// Cohort targeting.
    pub cohort: CohortFilter,
    /// The staged-rollout plan, in order.
    pub stages: Vec<Stage>,
    /// Rounds each stage stays open before the next stage begins.
    pub stage_rounds: u64,
    /// Health limits that halt the campaign.
    pub health: HealthPolicy,
    /// Fault injection.
    pub faults: FaultModel,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            fleet: FleetConfig::default(),
            shards: 4,
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            // 2% dogfood, 18% beta, 80% prod.
            channel_split_bps: [200, 1800],
            cohort: CohortFilter::default(),
            stages: vec![
                Stage {
                    max_channel: Channel::Dogfood,
                    fraction_bps: 10_000,
                },
                Stage {
                    max_channel: Channel::Beta,
                    fraction_bps: 10_000,
                },
                Stage {
                    max_channel: Channel::Prod,
                    fraction_bps: 1_000,
                },
                Stage {
                    max_channel: Channel::Prod,
                    fraction_bps: 5_000,
                },
                Stage {
                    max_channel: Channel::Prod,
                    fraction_bps: 10_000,
                },
            ],
            stage_rounds: 4,
            health: HealthPolicy::default(),
            faults: FaultModel::default(),
        }
    }
}

/// Per-round campaign snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CampaignRoundStats {
    /// 1-based virtual round.
    pub round: u64,
    /// Stage index open during this round.
    pub stage: u32,
    /// The open fraction of the frontier channel during this round.
    pub fraction_bps: u32,
    /// Devices running the new version after this round (fleet-wide).
    pub updated: u32,
    /// Wire bytes served this round.
    pub wire_bytes: u64,
}

/// Why and when a campaign halted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CampaignHalt {
    /// Virtual round at which the halt decision took effect.
    pub round: u64,
    /// `"boot_failures"`, `"forgeries"`, or `"retry_storm"`.
    pub reason: &'static str,
}

/// Result of a campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignReport {
    /// Per-round adoption, in virtual-clock order.
    pub rounds: Vec<CampaignRoundStats>,
    /// Set when fleet health halted the campaign.
    pub halted: Option<CampaignHalt>,
    /// Devices running the new version at the end (after any rollback).
    pub updated: u32,
    /// Devices reverted to the old version by the halt rollback.
    pub rolled_back: u32,
    /// Devices held out after exhausting their boot attempts.
    pub held: u32,
    /// Total bytes the server pushed over the campaign.
    pub total_wire_bytes: u64,
}

/// SplitMix64 finalizer: a stable, well-mixed hash for deterministic
/// device→cohort assignment (channel, OS profile, percentile, faults each
/// use a distinct salt so the assignments are independent).
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn bucket_bps(seed: u64, salt: u64, device_id: u32) -> u32 {
    (mix(seed ^ salt ^ u64::from(device_id)) % 10_000) as u32
}

/// One fleet device plus its campaign-relevant attributes, all assigned
/// deterministically from the fleet seed and the device ID.
struct CampaignDevice {
    lite: LiteDevice,
    channel: Channel,
    os_profile: u8,
    /// Stable rollout percentile within the channel, in basis points.
    percentile_bps: u32,
    /// Whether this device's post-install boot fails (fault injection).
    faulty: bool,
    /// Failed boot attempts so far.
    attempts: u32,
    /// Gave up after [`FaultModel::max_attempts`] failed boots.
    held: bool,
}

impl CampaignDevice {
    fn provision(seed: u64, device_id: u32, config: &CampaignConfig) -> Self {
        let channel_bucket = bucket_bps(seed, 0xC4A7_7E11, device_id);
        let channel = if channel_bucket < config.channel_split_bps[0] {
            Channel::Dogfood
        } else if channel_bucket < config.channel_split_bps[0] + config.channel_split_bps[1] {
            Channel::Beta
        } else {
            Channel::Prod
        };
        Self {
            lite: LiteDevice::provision(device_id, config.fleet.differential),
            channel,
            os_profile: (mix(seed ^ 0x05_F11E ^ u64::from(device_id)) % 3) as u8,
            percentile_bps: bucket_bps(seed, 0xF4AC_7104, device_id),
            faulty: bucket_bps(seed, 0x000F_A017_B005, device_id) < config.faults.boot_failure_bps,
            attempts: 0,
            held: false,
        }
    }

    fn in_cohort(&self, cohort: &CohortFilter) -> bool {
        cohort.os_profile.is_none_or(|p| p == self.os_profile)
            && self.lite.installed_version >= cohort.min_version
    }

    /// Whether `stage` enrolls this device: earlier channels are fully
    /// enrolled, the frontier channel fractionally by stable percentile.
    fn enrolled(&self, stage: &Stage, cohort: &CohortFilter) -> bool {
        self.in_cohort(cohort)
            && (self.channel < stage.max_channel
                || (self.channel == stage.max_channel && self.percentile_bps < stage.fraction_bps))
    }
}

/// What the coordinator tells a shard to do in a given round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Decision {
    /// Run the round with this stage open.
    Serve { stage: u32 },
    /// Health halted the campaign: roll back and stop.
    Halted,
    /// Every targeted device converged under the final stage: stop.
    Done,
}

/// What one shard reports after finishing a round — the only cross-shard
/// communication in the engine. Health fields are per-round deltas.
#[derive(Clone, Copy, Debug)]
struct ShardSummary {
    /// All final-stage-targeted devices in the shard are updated or held.
    complete: bool,
    boots_failed: u64,
    retries: u64,
    forgeries: u64,
}

/// The bounded-skew virtual-clock coordinator. `decision(r)` is a pure
/// function of the configuration and the shard summaries for rounds
/// `≤ r − K − 1`; summaries are folded strictly in round order, so the
/// same decisions come out whatever order workers publish in.
struct Coordinator {
    latency: u64,
    stage_rounds: u64,
    stage_count: u32,
    health: HealthPolicy,
    shard_count: usize,
    state: Mutex<CoordState>,
}

struct CoordState {
    /// `decisions[r - 1]` is the decision for 1-based round `r`.
    decisions: Vec<Decision>,
    /// `summaries[r - 1][shard]`, published as shards finish rounds.
    summaries: Vec<Vec<Option<ShardSummary>>>,
    /// Rounds already folded into the cumulative health totals.
    folded_rounds: u64,
    boots_failed: u64,
    retries: u64,
    forgeries: u64,
    /// Set once a halt or done decision is made; later rounds repeat it.
    terminal: Option<Decision>,
    halt: Option<CampaignHalt>,
}

impl Coordinator {
    fn new(config: &CampaignConfig, shard_count: usize) -> Self {
        assert!(config.stage_rounds > 0, "stage_rounds must be positive");
        assert!(!config.stages.is_empty(), "a campaign needs stages");
        Self {
            latency: config.health.decision_latency,
            stage_rounds: config.stage_rounds,
            stage_count: config.stages.len() as u32,
            health: config.health,
            shard_count,
            state: Mutex::new(CoordState {
                decisions: Vec::new(),
                summaries: Vec::new(),
                folded_rounds: 0,
                boots_failed: 0,
                retries: 0,
                forgeries: 0,
                terminal: None,
                halt: None,
            }),
        }
    }

    /// Stage open during `round` on the unhalted schedule.
    fn stage_for(&self, round: u64) -> u32 {
        (((round - 1) / self.stage_rounds) as u32).min(self.stage_count - 1)
    }

    fn publish(&self, round: u64, shard: usize, summary: ShardSummary) {
        let mut state = self.state.lock().expect("coordinator lock");
        let index = (round - 1) as usize;
        while state.summaries.len() <= index {
            let row = vec![None; self.shard_count];
            state.summaries.push(row);
        }
        state.summaries[index][shard] = Some(summary);
    }

    /// The decision for 1-based `round`, or `None` while the virtual
    /// clock does not yet permit it (some shard is more than `K + 1`
    /// rounds behind). Extends the decision log as far as the published
    /// summaries allow.
    fn decision(&self, round: u64) -> Option<Decision> {
        let mut state = self.state.lock().expect("coordinator lock");
        while (state.decisions.len() as u64) < round {
            let need = state.decisions.len() as u64 + 1;
            if let Some(terminal) = state.terminal {
                state.decisions.push(terminal);
                continue;
            }
            if need <= self.latency + 1 {
                // The reaction window: decisions with no visible counters
                // yet run the schedule's initial stage.
                let stage = self.stage_for(need);
                state.decisions.push(Decision::Serve { stage });
                continue;
            }
            let visible = need - self.latency - 1;
            let row = match state.summaries.get((visible - 1) as usize) {
                Some(row) if row.iter().all(Option::is_some) => row,
                _ => break,
            };
            // Fold exactly round `visible` (rounds are folded in order:
            // each extension step advances the frontier by one).
            debug_assert_eq!(state.folded_rounds + 1, visible);
            let mut complete = true;
            let (mut boots, mut retries, mut forgeries) = (0, 0, 0);
            for summary in row.iter().flatten() {
                complete &= summary.complete;
                boots += summary.boots_failed;
                retries += summary.retries;
                forgeries += summary.forgeries;
            }
            state.folded_rounds = visible;
            state.boots_failed += boots;
            state.retries += retries;
            state.forgeries += forgeries;

            let reason = if state.forgeries > self.health.max_forgeries {
                Some("forgeries")
            } else if state.boots_failed > self.health.max_boot_failures {
                Some("boot_failures")
            } else if state.retries > self.health.max_retries {
                Some("retry_storm")
            } else {
                None
            };
            let decision = if let Some(reason) = reason {
                state.halt = Some(CampaignHalt {
                    round: need,
                    reason,
                });
                Decision::Halted
            } else if complete && self.stage_for(visible) == self.stage_count - 1 {
                Decision::Done
            } else {
                Decision::Serve {
                    stage: self.stage_for(need),
                }
            };
            if matches!(decision, Decision::Halted | Decision::Done) {
                state.terminal = Some(decision);
            }
            state.decisions.push(decision);
        }
        state.decisions.get((round - 1) as usize).copied()
    }

    fn halt(&self) -> Option<CampaignHalt> {
        self.state.lock().expect("coordinator lock").halt
    }
}

/// Per-shard, per-round output, merged deterministically after the join.
struct RoundDelta {
    updated: u32,
    wire_bytes: u64,
    counters: CountersSnapshot,
    records: Vec<TraceRecord>,
}

struct CampaignShard {
    index: usize,
    rng: StdRng,
    devices: Vec<CampaignDevice>,
    per_round: usize,
    ctx: ShardCtx,
    /// 1-based round this shard runs next (its virtual clock).
    next_round: u64,
    history: Vec<RoundDelta>,
    /// Trace delta of the halt rollback pass, if one ran.
    rollback: Option<(CountersSnapshot, Vec<TraceRecord>)>,
    finished: bool,
}

impl CampaignShard {
    /// All devices this shard must converge under the final stage are
    /// updated or held out.
    fn complete(&self, final_stage: &Stage, cohort: &CohortFilter) -> bool {
        self.devices.iter().all(|d| {
            d.held || d.lite.installed_version >= Version(2) || !d.enrolled(final_stage, cohort)
        })
    }

    /// One polling round at `stage`. The sampling loop consumes the
    /// shard RNG identically whatever the stage, so stage boundaries
    /// (which are virtual-clock decisions) never perturb the stream.
    fn run_round(
        &mut self,
        env: &FleetEnv<'_>,
        config: &CampaignConfig,
        stage_index: u32,
        coordinator: &Coordinator,
    ) {
        let stage = &config.stages[stage_index as usize];
        let mut wire_bytes = 0u64;
        let mut indices: Vec<usize> = (0..self.devices.len()).collect();
        for _ in 0..self.per_round {
            if indices.is_empty() {
                break;
            }
            let pick = self.rng.random_range(0..indices.len());
            let device = &mut self.devices[indices.swap_remove(pick)];
            if device.held || !device.enrolled(stage, &config.cohort) {
                continue;
            }
            let pending = device.lite.installed_version < Version(2);
            if pending && device.attempts > 0 {
                // A re-download after a failed boot: retry pressure the
                // health policy watches for.
                Counters::add(&self.ctx.tracer.counters().retries, 1);
            }
            let device_id = u64::from(device.lite.device_id);
            match device.lite.poll(env, &mut self.ctx) {
                PollOutcome::Updated { wire_bytes: b, .. } => {
                    wire_bytes += b;
                    if device.faulty {
                        // Post-install boot failure: the bootloader falls
                        // back to the old slot, so the device reverts and
                        // will retry — until it exhausts its attempts.
                        device.lite.roll_back_to(Version(1));
                        device.attempts += 1;
                        Counters::add(&self.ctx.tracer.counters().boots_failed, 1);
                        if device.attempts >= config.faults.max_attempts {
                            device.held = true;
                        }
                        self.ctx.tracer.emit(|| Event::DeviceComplete {
                            device: device_id,
                            outcome: "boot_failed",
                        });
                    } else {
                        self.ctx.tracer.emit(|| Event::DeviceComplete {
                            device: device_id,
                            outcome: "complete",
                        });
                    }
                }
                PollOutcome::AlreadyCurrent => {}
                PollOutcome::Rejected => {
                    assert!(
                        device.lite.installed_version >= Version(2),
                        "pending device rejected an honest update"
                    );
                }
            }
        }
        Counters::add(&self.ctx.tracer.counters().link_bytes_to_device, wire_bytes);
        let updated = self
            .devices
            .iter()
            .filter(|d| d.lite.installed_version >= Version(2))
            .count() as u32;
        let (counters, records) = self.ctx.drain_round();
        let summary = ShardSummary {
            complete: self.complete(config.stages.last().expect("stages"), &config.cohort),
            boots_failed: counters.boots_failed,
            retries: counters.retries,
            forgeries: counters.forgeries_accepted,
        };
        self.history.push(RoundDelta {
            updated,
            wire_bytes,
            counters,
            records,
        });
        let round = self.next_round;
        self.next_round += 1;
        coordinator.publish(round, self.index, summary);
    }

    /// Halt recovery: revert every device the campaign updated (the
    /// production analogue is serving the previous release back through
    /// the same update path).
    fn roll_back(&mut self) -> u32 {
        let mut rolled_back = 0u32;
        for device in &mut self.devices {
            if device.lite.installed_version >= Version(2) {
                device.lite.roll_back_to(Version(1));
                rolled_back += 1;
                Counters::add(&self.ctx.tracer.counters().devices_rolled_back, 1);
            }
        }
        self.rollback = Some(self.ctx.drain_round());
        rolled_back
    }
}

/// Runs a staged campaign. See [`run_campaign_traced`].
///
/// # Panics
///
/// Panics if the campaign fails to converge within a generous multiple of
/// the expected rounds (an engine bug, not an unlucky seed).
#[must_use]
pub fn run_campaign(config: &CampaignConfig) -> CampaignReport {
    run_campaign_traced(config, &Tracer::disabled())
}

/// Runs a staged campaign with observability: per-round
/// [`Event::RolloutRound`] and [`Event::CampaignStage`] records, device
/// completions/boot failures, and — on a health halt —
/// [`Event::CampaignHalted`] plus the rollback counters, all merged
/// deterministically whatever `threads` is.
#[must_use]
pub fn run_campaign_traced(config: &CampaignConfig, tracer: &Tracer) -> CampaignReport {
    let fleet = &config.fleet;
    let mut rng = StdRng::seed_from_u64(fleet.seed);
    let vendor = VendorServer::new(SigningKey::generate(&mut rng));
    let mut server = UpdateServer::new(SigningKey::generate(&mut rng));

    let generator = FirmwareGenerator::new(fleet.seed ^ 0xF00D);
    let v1 = generator.base(fleet.firmware_size);
    let v2 = generator.os_version_change(&v1);
    server.publish(vendor.release(v1.clone(), Version(1), LINK_OFFSET, APP_ID));
    server.publish(vendor.release(v2, Version(2), LINK_OFFSET, APP_ID));

    let device_count = fleet.devices as usize;
    let shard_count = (config.shards.max(1) as usize).min(device_count.max(1));
    let threads = config.threads.max(1).min(shard_count);

    let base_len = device_count / shard_count;
    let remainder = device_count % shard_count;
    let tracing_enabled = tracer.is_enabled();
    let mut cursor = 0usize;
    let slots: Vec<Mutex<CampaignShard>> = (0..shard_count)
        .map(|index| {
            let start = cursor;
            cursor += base_len + usize::from(index < remainder);
            let devices: Vec<CampaignDevice> = (start..cursor)
                .map(|i| CampaignDevice::provision(fleet.seed, 0x1000 + i as u32, config))
                .collect();
            let per_round = ((devices.len() as f64 * fleet.poll_fraction).ceil() as usize).max(1);
            Mutex::new(CampaignShard {
                index,
                rng: StdRng::seed_from_u64(
                    fleet
                        .seed
                        .wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(index as u64 + 1)),
                ),
                devices,
                per_round,
                ctx: ShardCtx::new(tracing_enabled),
                next_round: 1,
                history: Vec::new(),
                rollback: None,
                finished: false,
            })
        })
        .collect();

    let env = FleetEnv {
        server: &server,
        vendor_key: vendor.verifying_key(),
        server_key: server.verifying_key(),
        base_image: &v1,
        verify_signatures: true,
        manifest_mode: ManifestMode::Campaign,
    };
    let coordinator = Coordinator::new(config, shard_count);
    let max_rounds = (device_count / slots[0].lock().expect("slot").per_round.max(1) + 2) * 10
        + (config.stage_rounds as usize) * config.stages.len()
        + (config.health.decision_latency as usize + 2)
        + (config.faults.max_attempts as usize + 1) * 10;
    let rolled_back_total = AtomicU64::new(0);

    crossbeam::thread::scope(|scope| {
        let env = &env;
        let coordinator = &coordinator;
        let slots = &slots;
        let rolled_back_total = &rolled_back_total;
        for _ in 0..threads {
            scope.spawn(move |_| loop {
                let mut progressed = false;
                let mut remaining = 0usize;
                for slot in slots {
                    // A contended slot is being run by another worker —
                    // it is not finished; move on (work-stealing).
                    let Ok(mut shard) = slot.try_lock() else {
                        remaining += 1;
                        continue;
                    };
                    if shard.finished {
                        continue;
                    }
                    remaining += 1;
                    assert!(
                        (shard.next_round as usize) <= max_rounds,
                        "campaign failed to converge after {max_rounds} rounds"
                    );
                    match coordinator.decision(shard.next_round) {
                        // This shard is K + 1 rounds ahead of the
                        // slowest one; its clock must wait.
                        None => {}
                        Some(Decision::Serve { stage }) => {
                            shard.run_round(env, config, stage, coordinator);
                            progressed = true;
                        }
                        Some(Decision::Halted) => {
                            let rolled = shard.roll_back();
                            rolled_back_total.fetch_add(u64::from(rolled), Ordering::Relaxed);
                            shard.finished = true;
                            progressed = true;
                        }
                        Some(Decision::Done) => {
                            shard.finished = true;
                            progressed = true;
                        }
                    }
                }
                if remaining == 0 {
                    break;
                }
                if !progressed {
                    std::thread::yield_now();
                }
            });
        }
    })
    .expect("campaign workers do not panic");

    let shards: Vec<CampaignShard> = slots
        .into_iter()
        .map(|m| m.into_inner().expect("shard lock"))
        .collect();
    let halted = coordinator.halt();

    // Deterministic merge: every shard ran the same number of rounds (the
    // decision log is global), absorbed in (round, shard-index) order.
    let total_rounds = shards.iter().map(|s| s.history.len()).max().unwrap_or(0);
    debug_assert!(shards.iter().all(|s| s.history.len() == total_rounds));
    let mut rounds = Vec::with_capacity(total_rounds);
    let mut total_wire_bytes = 0u64;
    let mut previous_stage = None;
    for round_index in 0..total_rounds {
        let round = round_index as u64 + 1;
        let stage = coordinator.stage_for(round);
        if previous_stage != Some(stage) {
            previous_stage = Some(stage);
            let fraction = u64::from(config.stages[stage as usize].fraction_bps);
            tracer.emit(|| Event::CampaignStage {
                stage: u64::from(stage),
                fraction_bps: fraction,
                round,
            });
        }
        let mut updated = 0u32;
        let mut wire_bytes = 0u64;
        for shard in &shards {
            let delta = &shard.history[round_index];
            updated += delta.updated;
            wire_bytes += delta.wire_bytes;
            tracer.absorb(&delta.counters, &delta.records);
        }
        total_wire_bytes += wire_bytes;
        tracer.emit(|| Event::RolloutRound {
            round,
            completed: u64::from(updated),
        });
        rounds.push(CampaignRoundStats {
            round,
            stage,
            fraction_bps: config.stages[stage as usize].fraction_bps,
            updated,
            wire_bytes,
        });
    }
    if let Some(halt) = halted {
        Counters::add(&tracer.counters().campaign_halts, 1);
        tracer.emit(|| Event::CampaignHalted {
            round: halt.round,
            reason: halt.reason,
        });
        for shard in &shards {
            if let Some((counters, records)) = &shard.rollback {
                tracer.absorb(counters, records);
            }
        }
    }

    let updated = shards
        .iter()
        .flat_map(|s| &s.devices)
        .filter(|d| d.lite.installed_version >= Version(2))
        .count() as u32;
    let held = shards
        .iter()
        .flat_map(|s| &s.devices)
        .filter(|d| d.held)
        .count() as u32;
    CampaignReport {
        rounds,
        halted,
        updated,
        rolled_back: rolled_back_total.load(Ordering::Relaxed) as u32,
        held,
        total_wire_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CampaignConfig {
        CampaignConfig {
            fleet: FleetConfig {
                devices: 60,
                poll_fraction: 0.5,
                firmware_size: 6_000,
                differential: true,
                seed: 801,
            },
            shards: 4,
            threads: 2,
            stage_rounds: 3,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn healthy_campaign_converges_and_walks_all_stages() {
        let config = small_config();
        let report = run_campaign(&config);
        assert!(report.halted.is_none());
        assert_eq!(report.held, 0);
        assert_eq!(report.rolled_back, 0);
        assert_eq!(report.updated, config.fleet.devices);
        // The staged plan must actually gate adoption: while only
        // dogfood is open, prod devices stay on v1.
        let first_round = &report.rounds[0];
        assert!(
            u64::from(first_round.updated) < u64::from(config.fleet.devices),
            "stage 0 must not update the whole fleet"
        );
        let last_stage = report.rounds.last().unwrap().stage;
        assert_eq!(last_stage, config.stages.len() as u32 - 1);
    }

    #[test]
    fn adoption_is_monotone_per_round() {
        let report = run_campaign(&small_config());
        for pair in report.rounds.windows(2) {
            assert!(pair[1].updated >= pair[0].updated, "adoption regressed");
        }
    }

    #[test]
    fn cohort_filter_excludes_other_profiles() {
        let mut config = small_config();
        config.cohort.os_profile = Some(1);
        let report = run_campaign(&config);
        assert!(report.halted.is_none());
        // Only profile-1 devices update; the rest are out of cohort.
        assert!(report.updated > 0);
        assert!(report.updated < config.fleet.devices);
        let full = run_campaign(&small_config());
        assert!(report.total_wire_bytes < full.total_wire_bytes);
    }

    #[test]
    fn boot_failures_halt_and_roll_back() {
        let mut config = small_config();
        // Every fourth device fails to boot the new image, and the fleet
        // tolerates almost none of that.
        config.faults.boot_failure_bps = 2_500;
        config.health.max_boot_failures = 2;
        let report = run_campaign(&config);
        let halt = report.halted.expect("campaign must halt");
        assert_eq!(halt.reason, "boot_failures");
        assert_eq!(report.updated, 0, "halt must roll the fleet back");
        assert!(report.rolled_back > 0);
        // The halt reacts after the decision window, not instantly.
        assert!(halt.round > config.health.decision_latency);
    }

    #[test]
    fn retry_storms_halt_when_boot_failures_are_tolerated() {
        let mut config = small_config();
        config.faults.boot_failure_bps = 2_500;
        config.faults.max_attempts = 50;
        config.health.max_boot_failures = u64::MAX;
        config.health.max_retries = 3;
        let report = run_campaign(&config);
        assert_eq!(report.halted.expect("must halt").reason, "retry_storm");
    }

    #[test]
    fn faulty_devices_are_held_after_exhausting_attempts() {
        let mut config = small_config();
        config.faults.boot_failure_bps = 1_000;
        // Tolerate the failures so the campaign runs to completion.
        config.health.max_boot_failures = u64::MAX;
        config.health.max_retries = u64::MAX;
        let report = run_campaign(&config);
        assert!(report.halted.is_none());
        assert!(report.held > 0, "the seeded faults must hold devices");
        assert_eq!(
            u64::from(report.updated) + u64::from(report.held),
            u64::from(config.fleet.devices)
        );
    }

    #[test]
    fn thread_count_does_not_change_campaign_results() {
        let mut config = small_config();
        config.faults.boot_failure_bps = 1_500;
        config.health.max_boot_failures = 4;
        let reference = run_campaign(&CampaignConfig {
            threads: 1,
            ..config.clone()
        });
        for threads in [2usize, 4, 8] {
            let report = run_campaign(&CampaignConfig {
                threads,
                ..config.clone()
            });
            assert_eq!(reference, report, "{threads} threads");
        }
    }

    #[test]
    fn decision_latency_delays_but_does_not_prevent_halts() {
        let mut config = small_config();
        config.faults.boot_failure_bps = 2_500;
        config.health.max_boot_failures = 2;
        config.health.decision_latency = 1;
        let early = run_campaign(&config).halted.expect("halts");
        config.health.decision_latency = 4;
        let late = run_campaign(&config).halted.expect("halts");
        assert!(late.round >= early.round, "a longer window reacts later");
    }
}
