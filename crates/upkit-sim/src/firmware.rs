//! Synthetic firmware generation.
//!
//! The paper's differential-update experiments (Fig. 8b) diff real build
//! artifacts: consecutive OS versions (Zephyr v1.2 → v1.3) and an
//! application change of ~1000 bytes. Real builds are not available here,
//! so this module generates *structured* binaries whose similarity under
//! `bsdiff` matches those two cases: firmware is a sequence of
//! function-sized blocks drawn from a seeded pool (code), plus a string
//! table (rodata). An OS version change rewrites a fraction of the blocks
//! and shifts the layout; an application change edits a small contiguous
//! region.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Size of one synthetic "function" block.
const BLOCK: usize = 256;

/// A generator for related firmware images.
#[derive(Debug, Clone)]
pub struct FirmwareGenerator {
    seed: u64,
}

impl FirmwareGenerator {
    /// Creates a generator; equal seeds produce identical firmware.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Generates the base firmware of `size` bytes.
    #[must_use]
    pub fn base(&self, size: usize) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(size);
        // String table: repetitive, highly compressible rodata (~10 %).
        let strings = b"assertion failed: %s:%d | fw=%u build=%s | ";
        while out.len() < size / 10 {
            out.extend_from_slice(strings);
        }
        // Code blocks: pseudo-random but drawn from a reusable pool so
        // different regions share byte patterns, as real code does.
        let pool: Vec<[u8; BLOCK]> = (0..64)
            .map(|_| {
                let mut block = [0u8; BLOCK];
                rng.fill_bytes(&mut block);
                block
            })
            .collect();
        while out.len() < size {
            let template = pool[rng.random_range(0..pool.len())];
            let mut block = template;
            // Per-instance relocation-like tweaks.
            for i in (0..BLOCK).step_by(32) {
                block[i] = block[i].wrapping_add(rng.random_range(0..4));
            }
            let take = BLOCK.min(size - out.len());
            out.extend_from_slice(&block[..take]);
        }
        out
    }

    /// Derives an **OS-version-change** successor: a sizeable fraction of
    /// blocks rewritten and the tail shifted, as a kernel upgrade does.
    #[must_use]
    pub fn os_version_change(&self, base: &[u8]) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x05_0C_11_AE);
        let mut out = base.to_vec();
        // Rewrite ~20 % of the blocks in place.
        let blocks = out.len() / BLOCK;
        for b in 0..blocks {
            if rng.random_range(0..100) < 20 {
                let start = b * BLOCK;
                rng.fill_bytes(&mut out[start..start + BLOCK]);
            }
        }
        // Insert a new subsystem (layout shift for everything after it).
        let insert_at = out.len() / 3;
        let mut new_code = vec![0u8; 6 * BLOCK];
        rng.fill_bytes(&mut new_code);
        out.splice(insert_at..insert_at, new_code);
        out
    }

    /// Derives an **application-functionality change**: roughly
    /// `change_bytes` of difference (the paper uses 1000 bytes).
    #[must_use]
    pub fn app_change(&self, base: &[u8], change_bytes: usize) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xA9_9C_4A_06);
        let mut out = base.to_vec();
        let start = out.len() / 2;
        let end = (start + change_bytes).min(out.len());
        rng.fill_bytes(&mut out[start..end]);
        out
    }

    /// Generates one **module** of a multi-component build: module 0 is
    /// the base OS (the ordinary [`base`](Self::base) image); higher
    /// indices are independently seeded module binaries — same block
    /// structure, distinct content — so a set of modules looks like
    /// separately linked artifacts that still share code-pool idioms.
    #[must_use]
    pub fn module(&self, index: u8, size: usize) -> Vec<u8> {
        Self::new(self.seed ^ Self::module_tweak(index)).base(size)
    }

    /// Golden-ratio multiplicative tweak spreading module indices across
    /// the seed space (zero for module 0, so module 0 IS the base image).
    fn module_tweak(index: u8) -> u64 {
        u64::from(index).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Derives a module's next version: the base OS module gets a full
    /// OS-version change, every other module a small functional change —
    /// matching how a real multi-component release mixes a kernel bump
    /// with per-module edits.
    #[must_use]
    pub fn module_version_change(&self, index: u8, base: &[u8]) -> Vec<u8> {
        let per_module = Self::new(self.seed ^ Self::module_tweak(index));
        if index == 0 {
            per_module.os_version_change(base)
        } else {
            per_module.app_change(base, (base.len() / 40).max(64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upkit_compress::{compress, Params};
    use upkit_delta::{diff, patch};

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = FirmwareGenerator::new(9).base(10_000);
        let b = FirmwareGenerator::new(9).base(10_000);
        assert_eq!(a, b);
        let c = FirmwareGenerator::new(10).base(10_000);
        assert_ne!(a, c);
    }

    #[test]
    fn requested_sizes_are_exact() {
        for size in [100usize, 4096, 100_000, 12_345] {
            assert_eq!(FirmwareGenerator::new(1).base(size).len(), size);
        }
    }

    #[test]
    fn os_change_delta_is_substantial_but_far_below_full() {
        let generator = FirmwareGenerator::new(2);
        let v1 = generator.base(100_000);
        let v2 = generator.os_version_change(&v1);
        let wire = compress(&diff(&v1, &v2), Params::default());
        let ratio = wire.len() as f64 / v2.len() as f64;
        // Fig. 8b: an OS version change transfers ~1/3 of the full image.
        assert!((0.05..0.60).contains(&ratio), "delta ratio {ratio:.3}");
        assert_eq!(patch(&v1, &diff(&v1, &v2)).unwrap(), v2);
    }

    #[test]
    fn app_change_delta_is_tiny() {
        let generator = FirmwareGenerator::new(3);
        let v1 = generator.base(100_000);
        let v2 = generator.app_change(&v1, 1000);
        assert_eq!(v1.len(), v2.len());
        let wire = compress(&diff(&v1, &v2), Params::default());
        let ratio = wire.len() as f64 / v2.len() as f64;
        // Fig. 8b: ~1000 B of change transfers a small fraction.
        assert!(ratio < 0.15, "delta ratio {ratio:.3}");
        assert_eq!(patch(&v1, &diff(&v1, &v2)).unwrap(), v2);
    }

    #[test]
    fn app_change_is_smaller_than_os_change() {
        let generator = FirmwareGenerator::new(4);
        let v1 = generator.base(80_000);
        let os = compress(
            &diff(&v1, &generator.os_version_change(&v1)),
            Params::default(),
        );
        let app = compress(
            &diff(&v1, &generator.app_change(&v1, 1000)),
            Params::default(),
        );
        assert!(app.len() < os.len());
    }

    #[test]
    fn modules_are_distinct_but_deterministic() {
        let generator = FirmwareGenerator::new(6);
        let base = generator.module(0, 20_000);
        assert_eq!(base, generator.base(20_000), "module 0 IS the base OS");
        let m1 = generator.module(1, 20_000);
        let m2 = generator.module(2, 20_000);
        assert_ne!(m1, m2);
        assert_ne!(base, m1);
        assert_eq!(m1, FirmwareGenerator::new(6).module(1, 20_000));
    }

    #[test]
    fn module_version_changes_mirror_release_shape() {
        // Module 0 (base OS) changes like an OS upgrade; module 1 like an
        // app edit — so the OS delta dominates the module delta.
        let generator = FirmwareGenerator::new(7);
        let os_v1 = generator.module(0, 60_000);
        let os_v2 = generator.module_version_change(0, &os_v1);
        let app_v1 = generator.module(1, 60_000);
        let app_v2 = generator.module_version_change(1, &app_v1);
        let os_delta = compress(&diff(&os_v1, &os_v2), Params::default());
        let app_delta = compress(&diff(&app_v1, &app_v2), Params::default());
        assert!(app_delta.len() < os_delta.len());
        assert_eq!(patch(&app_v1, &diff(&app_v1, &app_v2)).unwrap(), app_v2);
    }

    #[test]
    fn firmware_is_partially_compressible() {
        // Structured, like real firmware: compresses somewhat, far from
        // fully.
        let fw = FirmwareGenerator::new(5).base(50_000);
        let packed = compress(&fw, Params::default());
        let ratio = packed.len() as f64 / fw.len() as f64;
        assert!((0.3..1.0).contains(&ratio), "compression ratio {ratio:.3}");
    }
}
