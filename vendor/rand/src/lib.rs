//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact* API surface it consumes: [`rngs::StdRng`], the
//! [`SeedableRng`]/[`Rng`]/[`RngExt`] traits, and the process-entropy
//! constructor [`rng()`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for equal seeds, statistically solid, and
//! fast; it makes no attempt to be byte-compatible with upstream `rand`.

#![warn(missing_docs)]

/// Concrete generators.
pub mod rngs {
    /// The workspace's standard deterministic PRNG (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

impl StdRng {
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the full state, the
        // initialization the xoshiro authors recommend.
        let mut x = state;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

/// Core random-value generation.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Types a uniform range can be sampled for (helper for
/// [`RngExt::random_range`]).
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)`; `low < high` is the caller's
    /// obligation.
    fn sample(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn FnMut() -> u64, low: Self, high: Self) -> Self {
                let span = (high as u128).wrapping_sub(low as u128) as u64;
                // Multiply-shift bounded sampling (Lemire); the modulo bias
                // is < 2^-64 per draw, irrelevant for simulation use.
                let hi = ((u128::from(rng()) * u128::from(span)) >> 64) as u64;
                low.wrapping_add(hi as Self)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods (kept in an extension trait so callers can
/// import it separately, mirroring how the workspace was written).
pub trait RngExt: Rng {
    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform + PartialOrd>(&mut self, range: core::ops::Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample from an empty range");
        let mut draw = || self.next_u64();
        T::sample(&mut draw, range.start, range.end)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Returns a generator seeded from process entropy (time ⊕ a fresh heap
/// address); for reproducible streams use [`SeedableRng::seed_from_u64`].
pub fn rng() -> StdRng {
    let time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let marker = Box::new(0u8);
    let addr = core::ptr::from_ref(&*marker) as u64;
    StdRng::seed_from_u64(time ^ addr.rotate_left(32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_every_length() {
        let mut rng = StdRng::seed_from_u64(1);
        for len in 0..40 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "len {len}");
            }
        }
    }

    #[test]
    fn random_range_stays_in_bounds_and_hits_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.random_range(0usize..7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.random_range(10u8..12);
            assert!((10..12).contains(&v));
        }
    }

    #[test]
    fn generate_through_mut_ref() {
        fn take<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(3);
        take(&mut rng);
    }
}
