//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace uses: the
//! [`proptest!`] macro, `prop_assert*`, [`prop_oneof!`], [`strategy::Just`],
//! `any::<T>()`, integer-range strategies, tuple strategies,
//! [`collection::vec`], and [`array::uniform4`]/[`array::uniform32`].
//!
//! Each test runs `ProptestConfig::cases` random cases from a fixed
//! per-case seed, so failures are reproducible run-to-run. There is no
//! shrinking: on failure the offending inputs are printed verbatim.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Strategy combinators and core types.
pub mod strategy {
    use super::TestRng;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type (used by
    /// [`crate::prop_oneof!`]).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies of one value type.
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> OneOf<T> {
        /// Builds the choice; `options` must be non-empty.
        #[must_use]
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.index(self.options.len());
            self.options[pick].generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

use strategy::Strategy;

/// The RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    fn new(seed: u64) -> Self {
        Self(StdRng::seed_from_u64(seed))
    }

    /// Next raw 64 random bits.
    pub fn bits(&mut self) -> u64 {
        use rand::Rng;
        self.0.next_u64()
    }

    /// Uniform index into a collection of length `len` (> 0).
    pub fn index(&mut self, len: usize) -> usize {
        self.0.random_range(0..len)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// A strategy over the whole domain of `Self`.
    fn arbitrary() -> Self::Strategy;
}

/// A strategy over every value of a primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.bits() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(core::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        (u128::from(rng.bits()) << 64) | u128::from(rng.bits())
    }
}

impl Arbitrary for u128 {
    type Strategy = AnyPrimitive<u128>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(core::marker::PhantomData)
    }
}

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.bits() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(core::marker::PhantomData)
    }
}

/// A strategy over every value of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.bits() % span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let span = ((hi - lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Whole-domain range of a 64-bit type.
                    return rng.bits() as $t;
                }
                lo + (rng.bits() % span) as $t
            }
        }

        impl Strategy for core::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX - self.start) as u64;
                if span == u64::MAX {
                    return rng.bits() as $t;
                }
                self.start + (rng.bits() % (span + 1)) as $t
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize);

/// Collection strategies.
pub mod collection {
    use super::{strategy::Strategy, TestRng};

    /// A strategy for `Vec<T>` with uniformly drawn length.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Vectors of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.end - self.size.start;
            let len = self.size.start + if span == 0 { 0 } else { rng.index(span) };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies.
pub mod array {
    use super::{strategy::Strategy, TestRng};

    /// An `[T; N]` strategy from one element strategy.
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            core::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// Arrays of 4 elements drawn from `element`.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
        UniformArray(element)
    }

    /// Arrays of 32 elements drawn from `element`.
    pub fn uniform32<S: Strategy>(element: S) -> UniformArray<S, 32> {
        UniformArray(element)
    }
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Runs `body` for every case, printing the inputs on panic (no
/// shrinking). Used by the [`proptest!`] expansion; not public API.
#[doc(hidden)]
pub fn run_cases<F: FnMut(&mut TestRng, u32)>(config: &ProptestConfig, name: &str, mut body: F) {
    for case in 0..config.cases {
        // Fixed seed schedule: reproducible without persistence files.
        let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            name_hash = (name_hash ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        let mut rng = TestRng::new(name_hash ^ (u64::from(case) << 32) ^ 0x5eed);
        body(&mut rng, case);
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        ProptestConfig,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` random cases.
#[macro_export]
macro_rules! proptest {
    { #![proptest_config($cfg:expr)] $($rest:tt)* } => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    { $($rest:tt)* } => {
        $crate::__proptest_fns!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    { ($cfg:expr) $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block $($rest:tt)* } => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_cases(&config, stringify!($name), |rng, case| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                let formatted = ::std::format!(
                    concat!("case {} of ", stringify!($name), ":", $(concat!("\n  ", stringify!($arg), " = {:?}"),)+),
                    case, $(&$arg),+
                );
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || {
                    $(let $arg = $arg;)+
                    $body
                }));
                if let ::std::result::Result::Err(panic) = result {
                    ::std::eprintln!("proptest failure in {}", formatted);
                    ::std::panic::resume_unwind(panic);
                }
            });
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    { ($cfg:expr) } => {};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($s:expr),+ $(,)? ) => {
        $crate::strategy::OneOf::new(vec![ $( $crate::strategy::boxed($s) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 10u8..=13, w in 5usize..9, x in 1u64..) {
            prop_assert!((10..=13).contains(&v));
            prop_assert!((5..9).contains(&w));
            prop_assert!(x >= 1);
        }

        #[test]
        fn vec_lengths_respect_range(data in crate::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!((2..7).contains(&data.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn oneof_map_and_just_compose(
            v in prop_oneof![
                any::<u8>().prop_map(usize::from),
                Just(999usize),
                (0usize..4).prop_map(|x| x * 2),
            ],
        ) {
            prop_assert!(v <= 999);
        }

        #[test]
        fn arrays_and_tuples(
            quad in crate::array::uniform4(any::<u64>()),
            pair in (any::<u16>(), crate::collection::vec(any::<u8>(), 1..4)),
        ) {
            prop_assert_eq!(quad.len(), 4);
            prop_assert!(!pair.1.is_empty());
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(5), "det", |rng, _| {
            first.push(rng.bits());
        });
        let mut second = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(5), "det", |rng, _| {
            second.push(rng.bits());
        });
        assert_eq!(first, second);
    }
}
