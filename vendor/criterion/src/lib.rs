//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — `Criterion`,
//! benchmark groups, `Bencher::iter`/`iter_batched`, `Throughput`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros — with
//! a simple calibrated-timing loop instead of criterion's statistics. In
//! test mode (`--test`, how `cargo test` invokes harness-less benches)
//! every benchmark runs exactly once as a smoke check.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How batches are sized in [`Bencher::iter_batched`] (accepted for API
/// compatibility; the shim always runs one routine call per setup call).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Declares the quantity one iteration processes, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Passed to every benchmark closure; drives the measured loop.
pub struct Bencher<'a> {
    smoke: bool,
    result: &'a mut Option<Sample>,
}

#[derive(Clone, Copy, Debug)]
struct Sample {
    mean: Duration,
    iters: u64,
}

const TARGET: Duration = Duration::from_millis(300);

impl Bencher<'_> {
    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke {
            std::hint::black_box(routine());
            return;
        }
        // Calibrate the iteration count to roughly TARGET wall time.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        let total = start.elapsed();
        *self.result = Some(Sample {
            mean: total / u32::try_from(iters).unwrap_or(u32::MAX),
            iters,
        });
    }

    /// Measures `routine` on fresh state from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.smoke {
            std::hint::black_box(routine(setup()));
            return;
        }
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(50));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        *self.result = Some(Sample {
            mean: total / u32::try_from(iters).unwrap_or(u32::MAX),
            iters,
        });
    }
}

/// The benchmark manager handed to every `criterion_group!` function.
pub struct Criterion {
    smoke: bool,
}

impl Criterion {
    /// Entry point used by [`criterion_main!`]; detects `--test` smoke mode.
    #[must_use]
    pub fn from_args() -> Self {
        let smoke = std::env::args().any(|a| a == "--test");
        Self { smoke }
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        let mut result = None;
        let mut bencher = Bencher {
            smoke: self.smoke,
            result: &mut result,
        };
        f(&mut bencher);
        report(name, result, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration quantity for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        let mut result = None;
        let mut bencher = Bencher {
            smoke: self.parent.smoke,
            result: &mut result,
        };
        f(&mut bencher);
        report(&format!("{}/{name}", self.name), result, self.throughput);
        self
    }

    /// Closes the group.
    pub fn finish(&mut self) {}
}

fn report(name: &str, sample: Option<Sample>, throughput: Option<Throughput>) {
    let Some(sample) = sample else {
        println!("{name:<40} smoke-run ok");
        return;
    };
    let nanos = sample.mean.as_nanos().max(1);
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            let mbps = (b as f64 / 1e6) / (nanos as f64 / 1e9);
            format!("  {mbps:>8.1} MB/s")
        }
        Some(Throughput::Elements(e)) => {
            let eps = e as f64 / (nanos as f64 / 1e9);
            format!("  {eps:>8.0} elem/s")
        }
        None => String::new(),
    };
    println!(
        "{name:<40} {:>12.3} ms/iter over {} iters{rate}",
        nanos as f64 / 1e6,
        sample.iters
    );
}

/// Groups benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { smoke: true };
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1, "smoke mode runs the routine exactly once");
    }

    #[test]
    fn groups_run_batched_benches() {
        let mut c = Criterion { smoke: true };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(10)).sample_size(10);
        group.bench_function("batched", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
    }
}
