//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` is used in this workspace; since Rust
//! 1.63 the standard library provides scoped threads, so the shim wraps
//! [`std::thread::scope`] in crossbeam's signature (closures receive the
//! scope, `scope` returns a `Result`).

#![warn(missing_docs)]

/// Scoped threads.
pub mod thread {
    /// Error type of [`scope`] (a child thread's panic payload).
    pub type ScopeError = Box<dyn std::any::Any + Send + 'static>;

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; joins them all before returning.
    ///
    /// # Errors
    ///
    /// Unlike crossbeam, a panicking child propagates the panic at join
    /// instead of returning `Err` — equivalent for test assertions.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    /// A handle for spawning borrowed-data threads.
    pub struct Scope<'scope, 'env> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread; the closure receives the scope again so it can
        /// spawn nested work (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicU32::new(0);
        super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .expect("threads join");
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_compiles() {
        let flag = AtomicU32::new(0);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| flag.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(flag.load(Ordering::Relaxed), 1);
    }
}
